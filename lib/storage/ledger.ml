module W = Splitbft_codec.Writer
module R = Splitbft_codec.Reader

type segment = {
  sg_first : int;
  sg_last : int;
  sg_chain : string;  (* chain hash after sg_last *)
  sg_counter : int64;
}

type t = {
  segment_entries : int;
  mutable chain : string;
  mutable last_seq : int;
  mutable floor : int;  (* entries <= floor have been compacted away *)
  mutable floor_chain : string;
  mutable stable : int;  (* certified checkpoint backing the floor *)
  mutable state_digest : string;  (* certified state digest at [stable] *)
  mutable sealed : segment list;  (* newest first *)
  mutable open_first : int;  (* 0 = open segment empty *)
  mutable open_count : int;
}

let entry_tag = "ledger:entry"
let base_tag = "ledger:base"
let cut_tag = "ledger:cut"
let seal_tag_prefix = "ledger:seal:"
let seal_tag last = Printf.sprintf "%s%d" seal_tag_prefix last
let is_ledger_tag tag = String.length tag >= 7 && String.sub tag 0 7 = "ledger:"

let seal_tag_seq tag =
  let p = String.length seal_tag_prefix in
  if String.length tag > p && String.sub tag 0 p = seal_tag_prefix then
    int_of_string_opt (String.sub tag p (String.length tag - p))
  else None

let create ~segment_entries =
  if segment_entries <= 0 then invalid_arg "Ledger.create: segment_entries must be positive";
  { segment_entries;
    chain = "";
    last_seq = 0;
    floor = 0;
    floor_chain = "";
    stable = 0;
    state_digest = "";
    sealed = [];
    open_first = 0;
    open_count = 0 }

let last_seq t = t.last_seq
let floor t = t.floor
let chain t = t.chain
let sealed_segments t = List.rev t.sealed
let segment_entries t = t.segment_entries

(* ----- sealed artifacts (segment header, compaction base) ----- *)

type header = { h_counter : int64; h_first : int; h_last : int; h_chain : string }

let encode_header h =
  W.to_string
    (fun w () ->
      W.u64 w h.h_counter;
      W.varint w h.h_first;
      W.varint w h.h_last;
      W.bytes w h.h_chain)
    ()

let decode_header s =
  R.parse
    (fun r ->
      let h_counter = R.u64 r in
      let h_first = R.varint r in
      let h_last = R.varint r in
      let h_chain = R.bytes r in
      { h_counter; h_first; h_last; h_chain })
    s

type base = {
  b_counter : int64;
  b_floor : int;
  b_chain : string;  (* chain hash after b_floor *)
  b_stable : int;
  b_state_digest : string;
}

let encode_base b =
  W.to_string
    (fun w () ->
      W.u64 w b.b_counter;
      W.varint w b.b_floor;
      W.bytes w b.b_chain;
      W.varint w b.b_stable;
      W.bytes w b.b_state_digest)
    ()

let decode_base s =
  R.parse
    (fun r ->
      let b_counter = R.u64 r in
      let b_floor = R.varint r in
      let b_chain = R.bytes r in
      let b_stable = R.varint r in
      let b_state_digest = R.bytes r in
      { b_counter; b_floor; b_chain; b_stable; b_state_digest })
    s

(* ----- append ----- *)

let append t ~seal ~counter ~seq ~digest ~ops =
  if seq <= t.last_seq then []
  else begin
    let e = { Entry.seq; digest; ops } in
    let chain = Entry.next_chain ~prev:t.chain e in
    t.chain <- chain;
    t.last_seq <- seq;
    if t.open_first = 0 then t.open_first <- seq;
    t.open_count <- t.open_count + 1;
    let recs = [ (entry_tag, Entry.encode_record ~chain e) ] in
    if t.open_count >= t.segment_entries then begin
      (* Rotation: bind the finished segment to a fresh counter value
         before anything newer is appended, so a host serving back an
         older ledger is at least two counter slots behind and recovery
         refuses it (one slot of tolerance covers the genuine crash
         window between the in-enclave bump and the persisted header). *)
      let c = counter () in
      let sg = { sg_first = t.open_first; sg_last = seq; sg_chain = chain; sg_counter = c } in
      t.sealed <- sg :: t.sealed;
      t.open_first <- 0;
      t.open_count <- 0;
      let header =
        encode_header { h_counter = c; h_first = sg.sg_first; h_last = seq; h_chain = chain }
      in
      recs @ [ (seal_tag seq, seal header) ]
    end
    else recs
  end

(* ----- compaction ----- *)

let compact t ~stable ~state_digest ~seal ~counter =
  let drop, keep = List.partition (fun sg -> sg.sg_last <= stable) t.sealed in
  match List.sort (fun a b -> Int.compare b.sg_last a.sg_last) drop with
  | [] -> []
  | newest :: _ ->
    t.sealed <- keep;
    t.floor <- newest.sg_last;
    t.floor_chain <- newest.sg_chain;
    t.stable <- stable;
    t.state_digest <- state_digest;
    let c = counter () in
    let b =
      { b_counter = c;
        b_floor = newest.sg_last;
        b_chain = newest.sg_chain;
        b_stable = stable;
        b_state_digest = state_digest }
    in
    [ (base_tag, seal (encode_base b)); (cut_tag, string_of_int newest.sg_last) ]

(* ----- recovery ----- *)

type recovered = {
  ledger : t;
  entries : Entry.t list;  (* surviving entries above the floor, oldest first *)
  rec_stable : int;
  rec_state_digest : string;
  torn_tail : bool;  (* the final record was torn and truncated *)
}

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let recover ~segment_entries ~counter ~unseal records =
  if segment_entries <= 0 then invalid_arg "Ledger.recover: segment_entries must be positive";
  let t = create ~segment_entries in
  let entries_rev = ref [] in
  let newest_counter = ref 0L in
  let torn = ref false in
  let error = ref None in
  let refuse reason = error := Some reason in
  let n = List.length records in
  (* Pass 1: anchor on the newest valid base.  The record stream is not
     base-first in general — entries appended before a compaction sit
     earlier on the medium than the base that covers part of them, and
     after host-side GC the surviving pre-base entries still do.  The
     base is authoritative for everything at or below its floor (it was
     only written once a 2f+1-certified checkpoint covered it), so the
     replay pass below starts from its anchor and skips the stale
     survivors instead of chaining from genesis. *)
  List.iteri
    (fun i (tag, data) ->
      if !error = None && String.equal tag base_tag then
        match unseal data with
        | Error e ->
          (* A base that does not unseal is a torn write if it is the
             final record on the medium (the crash window between the
             in-enclave seal and the host's fsync); anywhere earlier it
             is tampering. *)
          if i <> n - 1 then refuse ("ledger: base record rejected: " ^ e)
        | Ok blob -> (
          match decode_base blob with
          | Error e ->
            if i <> n - 1 then refuse ("ledger: base record malformed: " ^ e)
          | Ok b ->
            if b.b_floor < t.floor then
              refuse "ledger: compaction bases regress — history tampered"
            else begin
              t.floor <- b.b_floor;
              t.floor_chain <- b.b_chain;
              t.chain <- b.b_chain;
              t.last_seq <- b.b_floor;
              t.stable <- b.b_stable;
              t.state_digest <- b.b_state_digest;
              if b.b_counter > !newest_counter then newest_counter := b.b_counter
            end))
    records;
  (* Pass 2: replay entries and segment headers above the floor. *)
  List.iteri
    (fun i (tag, data) ->
      let final = i = n - 1 in
      if !error = None && not !torn then begin
        if String.equal tag base_tag then begin
          (* Consumed by pass 1; a torn final base truncates. *)
          if
            final
            &&
            match unseal data with
            | Error _ -> true
            | Ok blob -> Result.is_error (decode_base blob)
          then torn := true
        end
        else if String.equal tag cut_tag then ()  (* host-side GC marker *)
        else if String.equal tag entry_tag then begin
          match Entry.decode_record data with
          | Error _ ->
            (* A record that does not parse is a torn write if it is the
               final one on the medium — truncate it.  Anywhere earlier it
               is corruption of history and the ledger is refused. *)
            if final then torn := true
            else refuse "ledger: corrupt entry record before the tail — history tampered"
          | Ok (e, rec_chain) ->
            if e.seq <= t.floor then ()
              (* pre-compaction survivor, certified-covered by the base *)
            else if e.seq <= t.last_seq then
              if final then torn := true
              else refuse "ledger: non-monotonic entry sequence — history tampered"
            else begin
              let expect = Entry.next_chain ~prev:t.chain e in
              if not (String.equal expect rec_chain) then
                if final then torn := true
                else refuse "ledger: hash chain mismatch — history tampered"
              else begin
                entries_rev := e :: !entries_rev;
                t.chain <- rec_chain;
                t.last_seq <- e.seq;
                if t.open_first = 0 then t.open_first <- e.seq;
                t.open_count <- t.open_count + 1
              end
            end
        end
        else if has_prefix ~prefix:seal_tag_prefix tag then begin
          match unseal data with
          | Error e ->
            if final then torn := true
            else refuse ("ledger: sealed segment header rejected: " ^ e)
          | Ok blob -> (
            match decode_header blob with
            | Error e ->
              if final then torn := true
              else refuse ("ledger: sealed segment header malformed: " ^ e)
            | Ok h ->
              if h.h_last <= t.floor then begin
                (* Header of a compacted-away segment: stale but honest;
                   its counter still bounds how fresh the medium is. *)
                if h.h_counter > !newest_counter then newest_counter := h.h_counter
              end
              else if h.h_last <> t.last_seq || not (String.equal h.h_chain t.chain) then
                refuse
                  "ledger: sealed segment header does not cover the replayed entries — \
                   rollback or truncation detected"
              else begin
                t.sealed <-
                  { sg_first = h.h_first;
                    sg_last = h.h_last;
                    sg_chain = h.h_chain;
                    sg_counter = h.h_counter }
                  :: t.sealed;
                t.open_first <- 0;
                t.open_count <- 0;
                if h.h_counter > !newest_counter then newest_counter := h.h_counter
              end)
        end
        (* unknown ledger:* tags are ignored: forward compatibility *)
      end)
    records;
  match !error with
  | Some reason -> Error reason
  | None ->
    (* Counter binding, with the same one-slot tolerance as the sealed
       checkpoints: the enclave bumps inside the seal but the artifact
       reaches disk through the untrusted host, so a crash can lose
       exactly the newest one.  Anything further behind — or an artifact
       {e newer} than the platform counter (a wiped counter) — is a
       rollback and the ledger is refused loudly. *)
    let x = !newest_counter in
    if Int64.equal x counter || Int64.equal x (Int64.pred counter) then
      Ok
        { ledger = t;
          entries = List.rev !entries_rev;
          rec_stable = t.stable;
          rec_state_digest = t.state_digest;
          torn_tail = !torn }
    else
      Error
        (Printf.sprintf
           "ledger: rollback detected — newest sealed artifact bound to counter %Ld, \
            platform counter is %Ld"
           x counter)
