(** Proteus-style append-only, rollback-protected log beneath the
    Execution compartment.

    The ledger is a stream of entry records carrying a running hash
    chain.  Every [segment_entries] appends, the finished segment is
    {e sealed}: a header (first, last, chain) is bound to a fresh value
    of a named monotonic counter and persisted through the untrusted
    host, exactly the way sealed checkpoints are bound to the "ckpt"
    counter.  Compaction drops whole segments once a 2f+1-certified
    checkpoint covers them, replacing them with a sealed {e base} record
    holding the chain anchor and the certified state digest — replaying
    base + surviving entries reproduces the pre-compaction state.

    Recovery scans the surviving records oldest-first: a torn {e final}
    record is truncated (the legitimate crash window); corruption any
    earlier, a chain break, a header that does not cover the replayed
    entries, or a counter mismatch beyond one slot is refused loudly via
    the caller's alert path — the host is caught serving a rolled-back
    ledger.

    The module is enclave-agnostic: sealing and counter bumps are passed
    in as closures, so the Execution program wires [Enclave.seal] /
    [Enclave.counter_increment] while tests drive it directly. *)

type t

type segment = {
  sg_first : int;
  sg_last : int;
  sg_chain : string;
  sg_counter : int64;
}

val create : segment_entries:int -> t
(** Fresh, empty ledger rotating every [segment_entries] appends.
    @raise Invalid_argument if [segment_entries <= 0]. *)

val last_seq : t -> int
val floor : t -> int
val chain : t -> string
val sealed_segments : t -> segment list
(** Oldest first. *)

val segment_entries : t -> int

(** {2 Record tags} *)

val entry_tag : string
val base_tag : string
val cut_tag : string

val seal_tag : int -> string
(** Tag of the sealed header finishing the segment ending at the given
    sequence number. *)

val is_ledger_tag : string -> bool
(** [true] for every tag this module emits (prefix ["ledger:"]). *)

val seal_tag_seq : string -> int option
(** Inverse of {!seal_tag}: the segment-ending sequence number, for
    host-side garbage collection. *)

(** {2 Writing} *)

val append :
  t ->
  seal:(string -> string) ->
  counter:(unit -> int64) ->
  seq:int ->
  digest:string ->
  ops:string ->
  (string * string) list
(** Appends one committed entry; returns the (tag, data) records the
    caller must persist, in order — the entry record, plus a sealed
    segment header when this append completes a segment.  Sequence
    numbers at or below {!last_seq} are idempotently skipped ([[]]). *)

val compact :
  t ->
  stable:int ->
  state_digest:string ->
  seal:(string -> string) ->
  counter:(unit -> int64) ->
  (string * string) list
(** Drops every sealed segment fully covered by the certified checkpoint
    [stable] and returns the records to persist: a sealed base (bound to
    a fresh counter value, anchoring the chain and recording
    [state_digest]) followed by a {!cut_tag} marker telling the host
    which prefix to garbage-collect.  [[]] when no segment is droppable;
    the open segment and segments reaching past [stable] are never
    touched. *)

(** {2 Recovery} *)

type recovered = {
  ledger : t;  (** ready to continue appending *)
  entries : Entry.t list;  (** surviving entries above the floor, oldest first *)
  rec_stable : int;  (** certified checkpoint recorded by the newest base; 0 if none *)
  rec_state_digest : string;
  torn_tail : bool;  (** the final record was torn and truncated *)
}

val recover :
  segment_entries:int ->
  counter:int64 ->
  unseal:(string -> (string, string) result) ->
  (string * string) list ->
  (recovered, string) result
(** Replays persisted records (oldest first) into a fresh ledger.
    [counter] is the platform's current value of the ledger counter; the
    newest sealed artifact must be bound to [counter] or [counter - 1]
    (the one-slot crash window).  [Error reason] demands the caller take
    the refusal path (halt + alert) — it means tampering, not a crash. *)
