type t = {
  ecall_transition_us : float;
  ocall_transition_us : float;
  copy_per_byte_us : float;
  sign_us : float;
  verify_us : float;
  cache_ref_us : float;
  client_auth_us : float;
  reply_auth_us : float;
  decrypt_request_us : float;
  serialize_per_byte_us : float;
  exec_op_us : float;
  ledger_block_us : float;
  seal_base_us : float;
  seal_per_byte_us : float;
  pbft_core_us : float;
  pbft_core_per_req_us : float;
  pbft_request_us : float;
  broker_dispatch_us : float;
}

let default =
  { ecall_transition_us = 2.3;
    ocall_transition_us = 2.3;
    copy_per_byte_us = 0.010;
    sign_us = 25.0;
    verify_us = 65.0;
    cache_ref_us = 0.2;
    client_auth_us = 2.5;
    reply_auth_us = 1.0;
    decrypt_request_us = 0.5;
    serialize_per_byte_us = 0.004;
    exec_op_us = 1.0;
    ledger_block_us = 60.0;
    seal_base_us = 30.0;
    seal_per_byte_us = 0.15;
    pbft_core_us = 28.0;
    pbft_core_per_req_us = 0.15;
    pbft_request_us = 2.5;
    broker_dispatch_us = 0.5 }

(* SGX simulation mode runs enclave code as a normal process: no hardware
   transitions and no EPC encryption premium on boundary copies. *)
let simulation_mode t =
  { t with ecall_transition_us = 0.0; ocall_transition_us = 0.0; copy_per_byte_us = 0.0 }

let free =
  { ecall_transition_us = 0.0;
    ocall_transition_us = 0.0;
    copy_per_byte_us = 0.0;
    sign_us = 0.0;
    verify_us = 0.0;
    cache_ref_us = 0.0;
    client_auth_us = 0.0;
    reply_auth_us = 0.0;
    decrypt_request_us = 0.0;
    serialize_per_byte_us = 0.0;
    exec_op_us = 0.0;
    ledger_block_us = 0.0;
    seal_base_us = 0.0;
    seal_per_byte_us = 0.0;
    pbft_core_us = 0.0;
    pbft_core_per_req_us = 0.0;
    pbft_request_us = 0.0;
    broker_dispatch_us = 0.0 }
