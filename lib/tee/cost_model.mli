(** Calibrated latency model for the simulated testbed.

    All constants are simulated microseconds on the paper's machines (Intel
    Xeon E-2288G, 3.7 GHz, SGX SDK 2.16).  The enclave-transition cost
    follows the ≈8640-cycle figure of Weisse et al. (HotCalls, ISCA'17)
    that the paper cites; signature costs follow ring's Ed25519 on that
    hardware class; the remaining constants are calibrated so that the
    per-compartment ecall times reproduce Figure 4 (≈841 µs total per
    unbatched request, Execution ≈343 µs; Preparation dominating in batched
    mode).  See EXPERIMENTS.md for the calibration against every paper
    artifact. *)

type t = {
  ecall_transition_us : float;
      (** full ecall enter+exit cost, paid once per ecall *)
  ocall_transition_us : float;  (** cost of one ocall issued from inside *)
  copy_per_byte_us : float;
      (** copying request/response data across the enclave boundary,
          including (de)serialization at the boundary *)
  sign_us : float;  (** Ed25519-class signature creation *)
  verify_us : float;  (** Ed25519-class signature verification *)
  cache_ref_us : float;
      (** hit in the in-enclave verified-digest cache: one bounded-LRU
          lookup over in-EPC memory, replacing a [verify_us]-class
          re-verification of an already-proven signature *)
  client_auth_us : float;  (** HMAC verification of one client request *)
  reply_auth_us : float;  (** HMAC + encryption of one client reply *)
  decrypt_request_us : float;  (** AEAD open of one client request *)
  serialize_per_byte_us : float;
      (** protocol-message (de)serialization outside the copy path *)
  exec_op_us : float;  (** applying one operation to the application state *)
  ledger_block_us : float;
      (** forming and persistently writing one blockchain block (5
          requests); paid by both protocols — SplitBFT additionally pays
          the sealing and ocall costs *)
  seal_base_us : float;  (** fixed cost of sealing a block for persistence *)
  seal_per_byte_us : float;
  pbft_core_us : float;
      (** baseline PBFT: serial protocol-core handling of one message *)
  pbft_core_per_req_us : float;
      (** baseline PBFT: serial per-request bookkeeping inside a batch *)
  pbft_request_us : float;
      (** baseline PBFT: serial enqueue of one client request (batching is
          off the protocol core) *)
  broker_dispatch_us : float;
      (** SplitBFT untrusted broker: event-loop handling of one message *)
}

val default : t

val simulation_mode : t -> t
(** SGX simulation mode: enclave code runs as a normal process, so the
    hardware transition costs and the EPC boundary-copy premium disappear;
    crypto and execution costs are unchanged.  Used for the §6
    overhead-decomposition experiment. *)

val free : t
(** All costs zero — for functional tests where timing is irrelevant. *)
