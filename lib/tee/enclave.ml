module Signature = Splitbft_crypto.Signature
module Resource = Splitbft_sim.Resource
module Stats = Splitbft_util.Stats
module Registry = Splitbft_obs.Registry
module Tracer = Splitbft_obs.Tracer
module Trace_ctx = Splitbft_obs.Trace_ctx

type env = {
  enclave : t;
  keypair : Signature.keypair;
  rng : Splitbft_util.Rng.t;
  mutable pending_charge : float;
  mutable pending_outputs : string list; (* newest first *)
  (* Per-ecall cost attribution, reset on entry and read into the active
     span on exit.  [pending_charge] stays the single source of truth for
     the metered cost; these only classify where it came from. *)
  mutable cat_crypto : float;
  mutable cat_exec : float;
  mutable cat_seal : float;
  mutable cat_io : float;
  mutable cat_ocall_transitions : float;
  mutable ocalls : int;
  mutable call_cache_hits : int;
  (* Worker-pool plumbing, valid only while an ecall is executing: the
     caller's output sink (so deferred task outputs reach the same
     destination as the ecall's own outputs) and the transition span's
     context for stamping them. *)
  mutable deferred_sink : (string list -> unit) option;
  mutable ecall_out_ctx : Trace_ctx.t option;
}

and pool = {
  servers : Resource.t array;
  (* Conflict horizon per logical key: when the last writer finishes, and
     when the last reader finishes.  A task must start after the writers
     of everything it touches and after the readers of everything it
     writes — the classic RW/WR/WW hazard rule. *)
  write_free : (string, float) Hashtbl.t;
  read_free : (string, float) Hashtbl.t;
  c_tasks : Registry.counter;
  c_conflict_waits : Registry.counter;
  g_backlog_us : Registry.gauge;
}

and t = {
  name : string;
  platform : Platform.t;
  meas : Measurement.t;
  cost_model : Cost_model.t;
  sealing_key : string;
  mutable env : env option; (* None until first ecall builds it *)
  mutable handler : handler option;
  mutable program : program;
  mutable crashed : bool;
  mutable subverted : bool;
  mutable calls : int;
  mutable total_us : float;
  mutable durations : Stats.t;
  quote_encoded : string;
  cache : Verify_cache.t;
  pool : pool option;
  c_ecalls : Registry.counter;
  c_ecalls_aborted : Registry.counter;
  c_ecall_us : Registry.counter;
  c_copy_bytes : Registry.counter;
  c_cache_hits : Registry.counter;
  c_cache_misses : Registry.counter;
  h_ecall_us : Registry.histogram;
}

and handler = string -> unit
and program = env -> handler

let create ?(verify_cache_capacity = 0) ?(workers = 1) platform ~name ~measurement
    ~cost_model ~key_seed ~program =
  if workers <= 0 then invalid_arg "Enclave.create: workers must be positive";
  let keypair = Signature.derive ~seed:key_seed in
  let quote =
    Attestation.create platform ~measurement ~report_data:keypair.Signature.public
  in
  let obs = Splitbft_sim.Engine.obs (Platform.engine platform) in
  let labels = [ ("enclave", name) ] in
  let pool =
    if workers <= 1 then None
    else
      Some
        { servers =
            Array.init workers (fun i ->
                Resource.create (Platform.engine platform)
                  ~name:(Printf.sprintf "%s-w%d" name i));
          write_free = Hashtbl.create 64;
          read_free = Hashtbl.create 64;
          c_tasks = Registry.counter obs ~labels "tee.pool_tasks";
          c_conflict_waits = Registry.counter obs ~labels "tee.pool_conflict_waits";
          g_backlog_us = Registry.gauge obs ~labels "tee.pool_backlog_us" }
  in
  let t =
    { name;
      platform;
      meas = measurement;
      cost_model;
      sealing_key = Platform.sealing_key platform measurement;
      env = None;
      handler = None;
      program;
      crashed = false;
      subverted = false;
      calls = 0;
      total_us = 0.0;
      durations = Stats.create ();
      quote_encoded = Attestation.encode quote;
      cache = Verify_cache.create ~capacity:verify_cache_capacity;
      pool;
      c_ecalls = Registry.counter obs ~labels "tee.ecalls";
      c_ecalls_aborted = Registry.counter obs ~labels "tee.ecalls_aborted";
      c_ecall_us = Registry.counter obs ~labels "tee.ecall_us";
      c_copy_bytes = Registry.counter obs ~labels "tee.copy_bytes";
      c_cache_hits = Registry.counter obs ~labels "tee.verify_cache_hits";
      c_cache_misses = Registry.counter obs ~labels "tee.verify_cache_misses";
      h_ecall_us = Registry.histogram obs ~labels "tee.ecall_duration_us" }
  in
  t.env <-
    Some
      { enclave = t;
        keypair;
        rng = Splitbft_util.Rng.split (Platform.rng platform);
        pending_charge = 0.0;
        pending_outputs = [];
        cat_crypto = 0.0;
        cat_exec = 0.0;
        cat_seal = 0.0;
        cat_io = 0.0;
        cat_ocall_transitions = 0.0;
        ocalls = 0;
        call_cache_hits = 0;
        deferred_sink = None;
        ecall_out_ctx = None };
  t

let name t = t.name
let measurement t = t.meas
let platform t = t.platform

let the_env t =
  match t.env with
  | Some e -> e
  | None -> assert false

let public_key t = (the_env t).keypair.Signature.public

let instantiate t =
  match t.handler with
  | Some h -> h
  | None ->
    let h = t.program (the_env t) in
    t.handler <- Some h;
    h

(* Thread lane inside the replica's trace: the compartment part of
   "replicaN-compartment" (the whole name when there is no dash). *)
let lane t =
  match String.rindex_opt t.name '-' with
  | Some i -> String.sub t.name (i + 1) (String.length t.name - i - 1)
  | None -> t.name

let engine t = Platform.engine t.platform

(* Open the span covering this transition: a child of the caller's span
   when the payload belongs to a sampled trace, or a fresh orphan root
   (so aggregate cost attribution stays complete) when it does not. *)
let open_ecall_span t tracer ctx =
  let at = Splitbft_sim.Engine.now (engine t) in
  let pid = Platform.id t.platform in
  let tid = lane t in
  match ctx with
  | Some { Trace_ctx.trace; span; forced } ->
    let id =
      Tracer.open_span tracer ~parent:span ~trace ~name:("ecall:" ^ tid)
        ~cat:"enclave" ~pid ~tid ~at ()
    in
    Some (id, { Trace_ctx.trace; span = id; forced })
  | None ->
    if not (Tracer.record_orphans tracer) then None
    else
      let trace = Tracer.fresh_orphan_trace tracer in
      let id =
        Tracer.open_span tracer ~trace ~name:("ecall:" ^ tid) ~cat:"enclave" ~pid
          ~tid ~at ()
      in
      Some (id, { Trace_ctx.trace; span = id; forced = false })

let ecall t ~thread ?ctx ~payload ~on_done () =
  let cm = t.cost_model in
  let tracer = Splitbft_sim.Engine.tracer (engine t) in
  if t.crashed then begin
    (* An aborted ecall into a dead enclave: the transition is attempted,
       nothing comes back. *)
    Registry.incr t.c_ecalls_aborted;
    (match (tracer, ctx) with
    | Some tr, Some { Trace_ctx.trace; span; _ } ->
      let id =
        Tracer.open_span tr ~parent:span ~trace ~name:("ecall-aborted:" ^ lane t)
          ~cat:"enclave.aborted" ~pid:(Platform.id t.platform) ~tid:(lane t)
          ~at:(Splitbft_sim.Engine.now (engine t)) ()
      in
      Resource.submit thread ~cost:cm.ecall_transition_us (fun () ->
          Tracer.finish tr id ~at:(Splitbft_sim.Engine.now (engine t));
          on_done [])
    | _ -> Resource.submit thread ~cost:cm.ecall_transition_us (fun () -> on_done []))
  end
  else begin
    let env = the_env t in
    env.pending_charge <- 0.0;
    env.pending_outputs <- [];
    env.cat_crypto <- 0.0;
    env.cat_exec <- 0.0;
    env.cat_seal <- 0.0;
    env.cat_io <- 0.0;
    env.cat_ocall_transitions <- 0.0;
    env.ocalls <- 0;
    env.call_cache_hits <- 0;
    let span = match tracer with Some tr -> open_ecall_span t tr ctx | None -> None in
    env.deferred_sink <- Some on_done;
    env.ecall_out_ctx <- (match span with Some (_, c) -> Some c | None -> None);
    let handler = instantiate t in
    handler payload;
    env.deferred_sink <- None;
    env.ecall_out_ctx <- None;
    let outputs = List.rev env.pending_outputs in
    env.pending_outputs <- [];
    (* Outputs leave the boundary stamped with THIS transition's span, so
       whatever the environment does with them parents here. *)
    let outputs =
      match span with
      | Some (_, out_ctx) -> List.map (Trace_ctx.append (Some out_ctx)) outputs
      | None -> outputs
    in
    let out_bytes = List.fold_left (fun acc o -> acc + String.length o) 0 outputs in
    let copied = String.length payload + out_bytes in
    let copy_us = cm.copy_per_byte_us *. float_of_int copied in
    let cost = cm.ecall_transition_us +. copy_us +. env.pending_charge in
    (match (tracer, span) with
    | Some tr, Some (id, _) ->
      let categorized =
        env.cat_crypto +. env.cat_exec +. env.cat_seal +. env.cat_io
        +. env.cat_ocall_transitions
      in
      Tracer.add_arg tr id "transitions" (float_of_int (1 + env.ocalls));
      Tracer.add_arg tr id "transition_us"
        (cm.ecall_transition_us +. env.cat_ocall_transitions);
      Tracer.add_arg tr id "copied_bytes" (float_of_int copied);
      Tracer.add_arg tr id "copy_us" copy_us;
      Tracer.add_arg tr id "crypto_us" env.cat_crypto;
      Tracer.add_arg tr id "exec_us" env.cat_exec;
      Tracer.add_arg tr id "seal_us" env.cat_seal;
      Tracer.add_arg tr id "io_us" env.cat_io;
      Tracer.add_arg tr id "other_us"
        (Float.max 0.0 (env.pending_charge -. categorized));
      Tracer.add_arg tr id "cache_hits" (float_of_int env.call_cache_hits);
      Tracer.add_arg tr id "total_us" cost
    | _ -> ());
    env.pending_charge <- 0.0;
    t.calls <- t.calls + 1;
    t.total_us <- t.total_us +. cost;
    Stats.add t.durations cost;
    Registry.incr t.c_ecalls;
    Registry.add_f t.c_ecall_us cost;
    Registry.add t.c_copy_bytes copied;
    Registry.observe t.h_ecall_us cost;
    Resource.submit thread ~cost (fun () ->
        (match (tracer, span) with
        | Some tr, Some (id, _) ->
          Tracer.finish tr id ~at:(Splitbft_sim.Engine.now (engine t))
        | _ -> ());
        on_done outputs)
  end

let crash t = t.crashed <- true
let is_crashed t = t.crashed

let restart t ~program =
  t.crashed <- false;
  t.subverted <- false;
  t.program <- program;
  t.handler <- None;
  (* Enclave memory does not survive teardown: the verified-digest cache
     restarts cold, like every other in-enclave structure — including the
     worker pool's conflict horizons. *)
  Verify_cache.clear t.cache;
  match t.pool with
  | None -> ()
  | Some p ->
    Hashtbl.reset p.write_free;
    Hashtbl.reset p.read_free;
    (* The backlog gauge would otherwise hold the dead incarnation's last
       queue depth until the first post-restart pool task overwrites it. *)
    Registry.set p.g_backlog_us 0.0;
    Array.iter Resource.quiesce p.servers

(* Crash-path gauge reset without tearing the enclave down: a crashed
   host's enclaves stop receiving ecalls, so their pool backlog gauge
   would show the dead incarnation's queue until restart. *)
let quiesce t =
  match t.pool with
  | None -> ()
  | Some p ->
    Registry.set p.g_backlog_us 0.0;
    Array.iter Resource.quiesce p.servers

let subvert t program =
  t.subverted <- true;
  t.handler <- Some (program (the_env t))

let is_subverted t = t.subverted
let ecall_count t = t.calls
let ecall_total_us t = t.total_us
let ecall_durations t = t.durations

let reset_stats t =
  t.calls <- 0;
  t.total_us <- 0.0;
  t.durations <- Stats.create ()

let charge env us = env.pending_charge <- env.pending_charge +. us

let charge_crypto env us =
  env.cat_crypto <- env.cat_crypto +. us;
  charge env us

let charge_exec env us =
  env.cat_exec <- env.cat_exec +. us;
  charge env us

let charge_io env us =
  env.cat_io <- env.cat_io +. us;
  charge env us

let cost_model env = env.enclave.cost_model

let cache_enabled env = Verify_cache.capacity env.enclave.cache > 0

let cache_find env key =
  if not (cache_enabled env) then None
  else
    match Verify_cache.find env.enclave.cache key with
    | Some v ->
      env.call_cache_hits <- env.call_cache_hits + 1;
      Registry.incr env.enclave.c_cache_hits;
      charge_crypto env env.enclave.cost_model.cache_ref_us;
      Some v
    | None ->
      Registry.incr env.enclave.c_cache_misses;
      None

let cache_add env key value =
  if cache_enabled env then Verify_cache.add env.enclave.cache key value

let verify_cache t = t.cache
let emit env payload = env.pending_outputs <- payload :: env.pending_outputs

let ocall env ?(cost = 0.0) payload =
  let cm = env.enclave.cost_model in
  env.ocalls <- env.ocalls + 1;
  env.cat_ocall_transitions <- env.cat_ocall_transitions +. cm.ocall_transition_us;
  charge env cm.ocall_transition_us;
  charge_io env cost;
  emit env payload

let env_keypair env = env.keypair
let env_platform_id env = Platform.id env.enclave.platform
let env_measurement env = env.enclave.meas
let env_now env = Splitbft_sim.Engine.now (Platform.engine env.enclave.platform)
let env_rng env = env.rng

let pool_size t = match t.pool with None -> 1 | Some p -> Array.length p.servers

(* Conflict horizons only matter while they are in the future; prune stale
   keys so long runs do not accumulate one entry per key ever touched. *)
let pool_prune_horizons p ~now =
  let prune tbl =
    if Hashtbl.length tbl > 4096 then
      Hashtbl.iter
        (fun k t -> if t <= now then Hashtbl.remove tbl k)
        (Hashtbl.copy tbl)
  in
  prune p.write_free;
  prune p.read_free

let pool_run env f =
  match env.enclave.pool with
  | None -> ignore (f ())
  | Some p ->
    (* Run the task body now — state transitions stay in issue (sequence)
       order, so results are identical to serial execution by
       construction.  Only the task's *cost* and its outputs move to a
       worker: we snapshot the charge/output accumulators around [f],
       splice out what it contributed, and schedule that on the
       earliest-available worker, no earlier than the finish time of every
       conflicting task already scheduled. *)
    let charge0 = env.pending_charge in
    let crypto0 = env.cat_crypto and exec0 = env.cat_exec in
    let seal0 = env.cat_seal and io0 = env.cat_io in
    let ocall_t0 = env.cat_ocall_transitions and ocalls0 = env.ocalls in
    let outputs0 = env.pending_outputs in
    env.pending_outputs <- [];
    let reads, writes = f () in
    let task_outputs = List.rev env.pending_outputs in
    env.pending_outputs <- outputs0;
    let delta = env.pending_charge -. charge0 in
    env.pending_charge <- charge0;
    env.cat_crypto <- crypto0;
    env.cat_exec <- exec0;
    env.cat_seal <- seal0;
    env.cat_io <- io0;
    env.cat_ocall_transitions <- ocall_t0;
    env.ocalls <- ocalls0;
    let cm = env.enclave.cost_model in
    let out_bytes =
      List.fold_left (fun acc o -> acc + String.length o) 0 task_outputs
    in
    let cost = delta +. (cm.copy_per_byte_us *. float_of_int out_bytes) in
    if cost <= 0.0 && task_outputs = [] then ()
    else begin
      let now = env_now env in
      let dep = ref 0.0 in
      let raise_dep tbl k =
        match Hashtbl.find_opt tbl k with
        | Some t -> if t > !dep then dep := t
        | None -> ()
      in
      List.iter (raise_dep p.write_free) reads;
      List.iter
        (fun k ->
          raise_dep p.write_free k;
          raise_dep p.read_free k)
        writes;
      let best = ref p.servers.(0) in
      Array.iter
        (fun s -> if Resource.free_at s < Resource.free_at !best then best := s)
        p.servers;
      if !dep > Float.max now (Resource.free_at !best) then
        Registry.incr p.c_conflict_waits;
      let start = Float.max !dep (Float.max now (Resource.free_at !best)) in
      let finish = start +. cost in
      List.iter (fun k -> Hashtbl.replace p.write_free k finish) writes;
      List.iter
        (fun k ->
          let prev =
            match Hashtbl.find_opt p.read_free k with Some t -> t | None -> 0.0
          in
          Hashtbl.replace p.read_free k (Float.max prev finish))
        reads;
      pool_prune_horizons p ~now;
      Registry.incr p.c_tasks;
      Registry.add env.enclave.c_copy_bytes out_bytes;
      Registry.set p.g_backlog_us (Float.max 0.0 (finish -. now));
      let ctx = env.ecall_out_ctx in
      let stamped = List.map (Trace_ctx.append ctx) task_outputs in
      let sink =
        match env.deferred_sink with Some s -> s | None -> fun _ -> ()
      in
      Resource.submit_after !best ~earliest:!dep ~cost (fun () -> sink stamped)
    end

let charge_seal env us =
  env.cat_seal <- env.cat_seal +. us;
  charge env us

let seal env data =
  let cm = env.enclave.cost_model in
  charge_seal env
    (cm.seal_base_us +. (cm.seal_per_byte_us *. float_of_int (String.length data)));
  Sealing.seal ~key:env.enclave.sealing_key ~rng:env.rng data

let unseal env blob =
  let cm = env.enclave.cost_model in
  charge_seal env
    (cm.seal_base_us +. (cm.seal_per_byte_us *. float_of_int (String.length blob)));
  Sealing.unseal ~key:env.enclave.sealing_key blob

let scoped_counter_name t name =
  Printf.sprintf "%s:%s" (Splitbft_util.Hex.encode (Measurement.to_raw t.meas)) name

let tamper_counter t name = Platform.counter_tamper_reset t.platform (scoped_counter_name t name)
let counter_name env name = scoped_counter_name env.enclave name

let counter_increment env name =
  Platform.counter_increment env.enclave.platform (counter_name env name)

let counter_read env name = Platform.counter_read env.enclave.platform (counter_name env name)
let quote env = env.enclave.quote_encoded
