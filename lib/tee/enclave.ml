module Signature = Splitbft_crypto.Signature
module Resource = Splitbft_sim.Resource
module Stats = Splitbft_util.Stats
module Registry = Splitbft_obs.Registry

type env = {
  enclave : t;
  keypair : Signature.keypair;
  rng : Splitbft_util.Rng.t;
  mutable pending_charge : float;
  mutable pending_outputs : string list; (* newest first *)
}

and t = {
  name : string;
  platform : Platform.t;
  meas : Measurement.t;
  cost_model : Cost_model.t;
  sealing_key : string;
  mutable env : env option; (* None until first ecall builds it *)
  mutable handler : handler option;
  mutable program : program;
  mutable crashed : bool;
  mutable subverted : bool;
  mutable calls : int;
  mutable total_us : float;
  mutable durations : Stats.t;
  quote_encoded : string;
  c_ecalls : Registry.counter;
  c_ecalls_aborted : Registry.counter;
  c_ecall_us : Registry.counter;
  c_copy_bytes : Registry.counter;
  h_ecall_us : Registry.histogram;
}

and handler = string -> unit
and program = env -> handler

let create platform ~name ~measurement ~cost_model ~key_seed ~program =
  let keypair = Signature.derive ~seed:key_seed in
  let quote =
    Attestation.create platform ~measurement ~report_data:keypair.Signature.public
  in
  let obs = Splitbft_sim.Engine.obs (Platform.engine platform) in
  let labels = [ ("enclave", name) ] in
  let t =
    { name;
      platform;
      meas = measurement;
      cost_model;
      sealing_key = Platform.sealing_key platform measurement;
      env = None;
      handler = None;
      program;
      crashed = false;
      subverted = false;
      calls = 0;
      total_us = 0.0;
      durations = Stats.create ();
      quote_encoded = Attestation.encode quote;
      c_ecalls = Registry.counter obs ~labels "tee.ecalls";
      c_ecalls_aborted = Registry.counter obs ~labels "tee.ecalls_aborted";
      c_ecall_us = Registry.counter obs ~labels "tee.ecall_us";
      c_copy_bytes = Registry.counter obs ~labels "tee.copy_bytes";
      h_ecall_us = Registry.histogram obs ~labels "tee.ecall_duration_us" }
  in
  t.env <-
    Some
      { enclave = t;
        keypair;
        rng = Splitbft_util.Rng.split (Platform.rng platform);
        pending_charge = 0.0;
        pending_outputs = [] };
  t

let name t = t.name
let measurement t = t.meas
let platform t = t.platform

let the_env t =
  match t.env with
  | Some e -> e
  | None -> assert false

let public_key t = (the_env t).keypair.Signature.public

let instantiate t =
  match t.handler with
  | Some h -> h
  | None ->
    let h = t.program (the_env t) in
    t.handler <- Some h;
    h

let ecall t ~thread ~payload ~on_done =
  let cm = t.cost_model in
  if t.crashed then begin
    (* An aborted ecall into a dead enclave: the transition is attempted,
       nothing comes back. *)
    Registry.incr t.c_ecalls_aborted;
    Resource.submit thread ~cost:cm.ecall_transition_us (fun () -> on_done [])
  end
  else begin
    let env = the_env t in
    env.pending_charge <- 0.0;
    env.pending_outputs <- [];
    let handler = instantiate t in
    handler payload;
    let outputs = List.rev env.pending_outputs in
    env.pending_outputs <- [];
    let out_bytes = List.fold_left (fun acc o -> acc + String.length o) 0 outputs in
    let copied = String.length payload + out_bytes in
    let cost =
      cm.ecall_transition_us
      +. (cm.copy_per_byte_us *. float_of_int copied)
      +. env.pending_charge
    in
    env.pending_charge <- 0.0;
    t.calls <- t.calls + 1;
    t.total_us <- t.total_us +. cost;
    Stats.add t.durations cost;
    Registry.incr t.c_ecalls;
    Registry.add_f t.c_ecall_us cost;
    Registry.add t.c_copy_bytes copied;
    Registry.observe t.h_ecall_us cost;
    Resource.submit thread ~cost (fun () -> on_done outputs)
  end

let crash t = t.crashed <- true
let is_crashed t = t.crashed

let restart t ~program =
  t.crashed <- false;
  t.subverted <- false;
  t.program <- program;
  t.handler <- None

let subvert t program =
  t.subverted <- true;
  t.handler <- Some (program (the_env t))

let is_subverted t = t.subverted
let ecall_count t = t.calls
let ecall_total_us t = t.total_us
let ecall_durations t = t.durations

let reset_stats t =
  t.calls <- 0;
  t.total_us <- 0.0;
  t.durations <- Stats.create ()

let charge env us = env.pending_charge <- env.pending_charge +. us
let cost_model env = env.enclave.cost_model
let emit env payload = env.pending_outputs <- payload :: env.pending_outputs

let ocall env ?(cost = 0.0) payload =
  let cm = env.enclave.cost_model in
  charge env (cm.ocall_transition_us +. cost);
  emit env payload

let env_keypair env = env.keypair
let env_platform_id env = Platform.id env.enclave.platform
let env_measurement env = env.enclave.meas
let env_now env = Splitbft_sim.Engine.now (Platform.engine env.enclave.platform)
let env_rng env = env.rng

let seal env data =
  let cm = env.enclave.cost_model in
  charge env (cm.seal_base_us +. (cm.seal_per_byte_us *. float_of_int (String.length data)));
  Sealing.seal ~key:env.enclave.sealing_key ~rng:env.rng data

let unseal env blob =
  let cm = env.enclave.cost_model in
  charge env (cm.seal_base_us +. (cm.seal_per_byte_us *. float_of_int (String.length blob)));
  Sealing.unseal ~key:env.enclave.sealing_key blob

let scoped_counter_name t name =
  Printf.sprintf "%s:%s" (Splitbft_util.Hex.encode (Measurement.to_raw t.meas)) name

let tamper_counter t name = Platform.counter_tamper_reset t.platform (scoped_counter_name t name)
let counter_name env name = scoped_counter_name env.enclave name

let counter_increment env name =
  Platform.counter_increment env.enclave.platform (counter_name env name)

let counter_read env name = Platform.counter_read env.enclave.platform (counter_name env name)
let quote env = env.enclave.quote_encoded
