(** Simulated SGX enclave: an isolated, single-threaded program reachable
    only through metered ecalls.

    The program is a factory that receives the enclave environment once and
    returns the ecall handler; compartment state lives in the closure, so
    it is unreachable from outside by construction — the isolation property
    SGX provides in hardware.  Every ecall is charged on the calling thread
    resource: transition cost + copy-in + the handler's explicit charges +
    copy-out (see {!Cost_model}); outputs are delivered to the caller at
    the ecall's completion time.

    Fault injection mirrors the paper's model: an enclave can {b crash}
    (ecalls return nothing) or be {b subverted} (its handler replaced by an
    adversarial program that retains access to the enclave's own keys —
    i.e. a byzantine enclave can equivocate but still cannot forge other
    enclaves' signatures). *)

type t

type env
(** Capabilities available to the program inside the enclave. *)

type handler = string -> unit
(** Processes one ecall payload; effects leave via {!emit}/{!ocall}. *)

type program = env -> handler
(** Called once per (re)start; state lives in the returned closure. *)

val create :
  ?verify_cache_capacity:int ->
  ?workers:int ->
  Platform.t ->
  name:string ->
  measurement:Measurement.t ->
  cost_model:Cost_model.t ->
  key_seed:string ->
  program:program ->
  t
(** The enclave's protocol keypair derives deterministically from
    [key_seed].  [verify_cache_capacity] bounds the in-enclave
    verified-digest cache ({!Verify_cache}); 0 (the default) disables
    it.  [workers] (default 1) sizes the in-enclave worker pool used by
    {!pool_run}; at 1 there is no pool and {!pool_run} degenerates to
    running its task inline, reproducing single-threaded cost accounting
    exactly. *)

val name : t -> string
val measurement : t -> Measurement.t
val platform : t -> Platform.t

val public_key : t -> Splitbft_crypto.Signature.public
(** The enclave's protocol signing public key (also embedded in its
    attestation quotes as report data). *)

val ecall :
  t ->
  thread:Splitbft_sim.Resource.t ->
  ?ctx:Splitbft_obs.Trace_ctx.t ->
  payload:string ->
  on_done:(string list -> unit) ->
  unit ->
  unit
(** Asynchronous ecall: occupies [thread] for the metered duration, then
    invokes [on_done outputs].  On a crashed enclave only the transition
    cost is paid and [on_done []] fires.

    When the engine has a tracer, the transition records a span —
    parented on [ctx] when given, an orphan root otherwise (if the
    tracer records orphans) — carrying the Figure-4 cost attribution as
    span arguments: transition count/time, copied bytes/time, and the
    handler's charges split by category (crypto/exec/seal/io/other).
    Outputs are stamped with the span's context, so downstream effects
    parent on this transition. *)

(** {2 Fault injection} *)

val crash : t -> unit
val is_crashed : t -> bool

val restart : t -> program:program -> unit
(** Reboot with a fresh program instance (recovery re-populates state via
    {!unseal}); clears the crashed flag and any subversion. *)

val quiesce : t -> unit
(** Crash-path gauge reset: zeroes the worker pool's [tee.pool_backlog_us]
    gauge and its workers' queue gauges (see {!Splitbft_sim.Resource.quiesce})
    without tearing the enclave down, so a dashboard sampled while the
    host is down never reads the dead incarnation's backlog.  No-op for a
    pool-less enclave; {!restart} performs the same reset itself. *)

val subvert : t -> program -> unit
(** Replaces the running handler with an adversarial program sharing the
    same [env] (same keys, sealing, counters). *)

val is_subverted : t -> bool

val tamper_counter : t -> string -> unit
(** Fault injection: wipe the named monotonic counter (scoped to this
    enclave's measurement, as {!counter_increment} scopes it) — the
    rollback attack a malicious host mounts against sealed state.  A
    subsequent recovery must detect the mismatch and refuse the blob. *)

(** {2 Accounting (Figure 4)} *)

val ecall_count : t -> int
val ecall_total_us : t -> float
val ecall_durations : t -> Splitbft_util.Stats.t
val reset_stats : t -> unit

(** {2 Environment API (used by programs)} *)

val charge : env -> float -> unit
(** Adds compute time to the current ecall (attributed to the catch-all
    "other" category in traces). *)

val charge_crypto : env -> float -> unit
(** [charge], attributed to signature/MAC/AEAD work. *)

val charge_exec : env -> float -> unit
(** [charge], attributed to application execution. *)

val charge_io : env -> float -> unit
(** [charge], attributed to storage/ledger work performed outside. *)

val cost_model : env -> Cost_model.t

(** {2 Verified-digest cache}

    A bounded LRU in enclave memory recording facts this enclave has
    already paid trusted crypto to establish.  Only the program inserts
    (and only after a successful verification), so the untrusted world
    cannot poison it; a hit charges {!Cost_model.t.cache_ref_us} instead
    of the avoided crypto and is metered as [tee.verify_cache_hits]
    (per-span arg [cache_hits], reconciled by [Harness.Trace_report]). *)

val cache_enabled : env -> bool

val cache_find : env -> string -> string option
(** On a hit: promotes the entry, charges one cache reference (attributed
    to crypto) and counts [tee.verify_cache_hits].  On a miss (or with the
    cache disabled): returns [None]; misses on an enabled cache count
    [tee.verify_cache_misses]. *)

val cache_add : env -> string -> string -> unit
(** Records a fact.  Call strictly after the verification it memoizes
    succeeded. *)

val verify_cache : t -> Verify_cache.t
(** The enclave's cache, for tests and introspection. *)

val emit : env -> string -> unit
(** Queues an output returned to the caller when the ecall completes
    (copy-out is charged; no extra transition — it rides the ecall
    return). *)

val ocall : env -> ?cost:float -> string -> unit
(** Like {!emit} but modelling a mid-ecall ocall: charges the ocall
    transition plus [cost] (work performed outside). *)

(** {2 Worker pool}

    A pool of in-enclave worker threads (SGX enclaves may host multiple
    trusted threads; each is a serial {!Splitbft_sim.Resource.t} named
    ["<enclave>-w<i>"]).  {!pool_run} executes a task's state transition
    immediately — in issue order, so results are bit-identical to serial
    execution — but moves its metered cost and its emitted outputs onto
    the earliest-available worker, no earlier than the finish time of any
    conflicting task (per the read/write footprint the task returns).
    Deferred outputs reach the ecall caller's [on_done] when the worker
    finishes.  Metered as [tee.pool_tasks] / [tee.pool_conflict_waits] /
    [tee.pool_backlog_us]. *)

val pool_size : t -> int
(** Number of workers (1 when the enclave has no pool). *)

val pool_run : env -> (unit -> string list * string list) -> unit
(** [pool_run env task] runs [task] now; [task] returns its [(reads,
    writes)] key footprint.  Only callable from inside an ecall handler.
    Without a pool: equivalent to [ignore (task ())]. *)

val env_keypair : env -> Splitbft_crypto.Signature.keypair
val env_platform_id : env -> int
val env_measurement : env -> Measurement.t
val env_now : env -> float
val env_rng : env -> Splitbft_util.Rng.t

val seal : env -> string -> string
(** Seals under this enclave's sealing key (charges sealing cost). *)

val unseal : env -> string -> (string, string) result

val counter_increment : env -> string -> int64
(** Monotonic counter scoped to this enclave's measurement. *)

val counter_read : env -> string -> int64

val quote : env -> string
(** Encoded attestation quote whose report data is this enclave's protocol
    public key. *)
