module Lru = Splitbft_util.Lru

type t = string Lru.t

let create ~capacity = Lru.create ~capacity

(* Length-prefix the variable-length signature so no choice of signing
   bytes can alias another entry's (kind, signature, bytes) triple: the
   cache only ever records triples that passed a full verification, and an
   unambiguous encoding is what makes a later hit equivalent to re-running
   that verification. *)
let key ~kind ~signature ~bytes =
  Printf.sprintf "%s:%d:%s%s" kind (String.length signature) signature bytes

let find = Lru.find
let add = Lru.add
let length = Lru.length
let capacity = Lru.capacity
let hits = Lru.hits
let misses = Lru.misses
let clear = Lru.clear
