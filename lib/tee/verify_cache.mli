(** Per-enclave verified-digest cache (bounded LRU, inside the trust
    boundary).

    Records facts the enclave has already paid trusted crypto to
    establish — "this signature verified over these bytes", "this batch
    hashes to this digest" — so re-encountering the same artifact
    (preprepare→prepare→commit reuse, view-change proofs, checkpoint
    certificates, retransmissions, state transfer) costs one in-EPC
    lookup ({!Cost_model.t.cache_ref_us}) instead of a re-verification.

    Poison resistance comes from *where* entries are created, not from the
    structure itself: the cache lives in enclave memory and only the
    enclave inserts, strictly after a successful verification.  The
    untrusted broker can replay or reorder inputs (at worst causing extra
    misses or hits on facts that are true anyway) but can never insert a
    fact, so a hit is exactly as trustworthy as the verification that
    created the entry.  See DESIGN.md, "Verified-digest cache". *)

type t

val create : capacity:int -> t
(** Capacity 0 = disabled (every lookup misses, nothing is stored). *)

val key : kind:string -> signature:string -> bytes:string -> string
(** Unambiguous cache key for a signature-verification fact: [kind] names
    the message class (and thereby the key table it verifies against),
    [bytes] are the exact signing bytes.  The variable-length fields are
    length-prefixed so distinct triples can never collide. *)

val find : t -> string -> string option
val add : t -> string -> string -> unit
val length : t -> int
val capacity : t -> int

val hits : t -> int
val misses : t -> int

val clear : t -> unit
