let client_base = 1_000
let follower_base = 500
let replica i = i
let client c = client_base + c
let follower fid = follower_base + fid
let is_client addr = addr >= client_base
let is_follower addr = addr >= follower_base && addr < client_base
let client_of_addr addr = addr - client_base
let follower_of_addr addr = addr - follower_base
let replica_of_addr addr = addr
