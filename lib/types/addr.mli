(** Network address scheme shared by all protocols: replicas occupy the low
    address range, read-only followers start at {!follower_base}, clients
    at {!client_base}. *)

val replica : Ids.replica_id -> int
val client : Ids.client_id -> int

val follower : int -> int
(** Address of read-only follower [fid]; followers sit between the replica
    and client ranges so {!is_client} keeps its historical meaning. *)

val client_base : int
val follower_base : int
val is_client : int -> bool
val is_follower : int -> bool
val client_of_addr : int -> Ids.client_id
val follower_of_addr : int -> int
val replica_of_addr : int -> Ids.replica_id
