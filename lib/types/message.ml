module W = Splitbft_codec.Writer
module R = Splitbft_codec.Reader
module Sha256 = Splitbft_crypto.Sha256
module Trace_ctx = Splitbft_obs.Trace_ctx

type request = {
  client : Ids.client_id;
  timestamp : int64;
  payload : string;
  auth : string;
}

type preprepare = {
  view : Ids.view;
  seq : Ids.seqno;
  batch : request list;
  sender : Ids.replica_id;
  pp_sig : string;
}

type prepare = {
  view : Ids.view;
  seq : Ids.seqno;
  digest : string;
  sender : Ids.replica_id;
  p_sig : string;
}

type commit = {
  view : Ids.view;
  seq : Ids.seqno;
  digest : string;
  sender : Ids.replica_id;
  c_sig : string;
}

type checkpoint = {
  seq : Ids.seqno;
  state_digest : string;
  sender : Ids.replica_id;
  ck_sig : string;
}

type reply = {
  view : Ids.view;
  timestamp : int64;
  client : Ids.client_id;
  sender : Ids.replica_id;
  result : string;
  r_auth : string;
}

type preprepare_digest = {
  pd_view : Ids.view;
  pd_seq : Ids.seqno;
  pd_digest : string;
  pd_sender : Ids.replica_id;
  pd_sig : string;
}

type prepared_proof = {
  proof_preprepare : preprepare_digest;
  proof_prepares : prepare list;
}

type viewchange = {
  vc_new_view : Ids.view;
  vc_last_stable : Ids.seqno;
  vc_checkpoint_proof : checkpoint list;
  vc_prepared : prepared_proof list;
  vc_sender : Ids.replica_id;
  vc_sig : string;
}

type newview = {
  nv_view : Ids.view;
  nv_viewchanges : viewchange list;
  nv_preprepares : preprepare_digest list;
  nv_sender : Ids.replica_id;
  nv_sig : string;
}

type session_init = { si_client : Ids.client_id }

type session_quote = {
  sq_replica : Ids.replica_id;
  sq_quote : string;
  sq_box_public : string;
  sq_nonce : string;
  sq_sig : string;
}

type session_key = {
  sk_client : Ids.client_id;
  sk_replica : Ids.replica_id;
  sk_box : string;
}

type session_ack = {
  sa_replica : Ids.replica_id;
  sa_client : Ids.client_id;
  sa_auth : string;
}

type batch_fetch = { bf_digest : string; bf_requester : Ids.replica_id }
type batch_data = { bd_batch : request list }

type state_request = { sr_requester : Ids.replica_id; sr_from : Ids.seqno }

type state_entry = { se_seq : Ids.seqno; se_digest : string; se_batch : request list }

type state_reply = {
  st_replier : Ids.replica_id;
  st_requester : Ids.replica_id;
  st_stable : Ids.seqno;
  st_proof : checkpoint list;
  st_snapshot : string;
  st_view : Ids.view;
  st_entries : state_entry list;
}

type ledger_subscribe = { lsu_follower : int; lsu_from : Ids.seqno }

type ledger_feed = {
  lf_replica : Ids.replica_id;
  lf_tip : Ids.seqno;
  lf_base : Ids.seqno;
  lf_records : string list;
}

type read_request = { rr_client : Ids.client_id; rr_ts : int64; rr_op : string }

type read_reply = {
  rd_follower : int;
  rd_client : Ids.client_id;
  rd_ts : int64;
  rd_seq : Ids.seqno;
  rd_lag : int;
  rd_result : string;
}

type t =
  | Request of request
  | Preprepare of preprepare
  | Preprepare_digest of preprepare_digest
  | Prepare of prepare
  | Commit of commit
  | Checkpoint of checkpoint
  | Reply of reply
  | Viewchange of viewchange
  | Newview of newview
  | Session_init of session_init
  | Session_quote of session_quote
  | Session_key of session_key
  | Session_ack of session_ack
  | Batch_fetch of batch_fetch
  | Batch_data of batch_data
  | State_request of state_request
  | State_reply of state_reply
  | Ledger_subscribe of ledger_subscribe
  | Ledger_feed of ledger_feed
  | Read_request of read_request
  | Read_reply of read_reply

let tag = function
  | Request _ -> 1
  | Preprepare _ -> 2
  | Preprepare_digest _ -> 13
  | Prepare _ -> 3
  | Commit _ -> 4
  | Checkpoint _ -> 5
  | Reply _ -> 6
  | Viewchange _ -> 7
  | Newview _ -> 8
  | Session_init _ -> 9
  | Session_quote _ -> 10
  | Session_key _ -> 11
  | Session_ack _ -> 12
  | Batch_fetch _ -> 14
  | Batch_data _ -> 15
  | State_request _ -> 16
  | State_reply _ -> 17
  | Ledger_subscribe _ -> 18
  | Ledger_feed _ -> 19
  | Read_request _ -> 20
  | Read_reply _ -> 21

let type_name = function
  | Request _ -> "request"
  | Preprepare _ -> "preprepare"
  | Preprepare_digest _ -> "preprepare-digest"
  | Prepare _ -> "prepare"
  | Commit _ -> "commit"
  | Checkpoint _ -> "checkpoint"
  | Reply _ -> "reply"
  | Viewchange _ -> "viewchange"
  | Newview _ -> "newview"
  | Session_init _ -> "session-init"
  | Session_quote _ -> "session-quote"
  | Session_key _ -> "session-key"
  | Session_ack _ -> "session-ack"
  | Batch_fetch _ -> "batch-fetch"
  | Batch_data _ -> "batch-data"
  | State_request _ -> "state-request"
  | State_reply _ -> "state-reply"
  | Ledger_subscribe _ -> "ledger-subscribe"
  | Ledger_feed _ -> "ledger-feed"
  | Read_request _ -> "read-request"
  | Read_reply _ -> "read-reply"

(* ----- request ----- *)

let write_request w (r : request) =
  W.varint w r.client;
  W.u64 w r.timestamp;
  W.bytes w r.payload;
  W.bytes w r.auth

let read_request r : request =
  let client = R.varint r in
  let timestamp = R.u64 r in
  let payload = R.bytes r in
  let auth = R.bytes r in
  { client; timestamp; payload; auth }

let encode_request_into = write_request
let encode_request req = W.to_string write_request req
let decode_request s = R.parse read_request s

let request_auth_bytes (r : request) =
  W.to_string
    (fun w () ->
      W.raw w "req-auth";
      W.varint w r.client;
      W.u64 w r.timestamp;
      W.bytes w r.payload)
    ()

let digest_of_request r = Sha256.digest (encode_request r)

let batch_preimage batch =
  let w = W.create () in
  W.raw w "batch";
  List.iter (write_request w) batch;
  W.contents w

let digest_of_batch batch = Sha256.digest (batch_preimage batch)

(* ----- preprepare ----- *)

let empty_batch_digest = digest_of_batch []

let write_preprepare w (pp : preprepare) =
  W.varint w pp.view;
  W.varint w pp.seq;
  W.list w write_request pp.batch;
  W.varint w pp.sender;
  W.bytes w pp.pp_sig

let read_preprepare r : preprepare =
  let view = R.varint r in
  let seq = R.varint r in
  let batch = R.list r read_request in
  let sender = R.varint r in
  let pp_sig = R.bytes r in
  { view; seq; batch; sender; pp_sig }

(* The signature covers the digest form, so it is valid on both the full
   and the summarized message. *)
let signing_bytes_of_proposal ~view ~seq ~digest ~sender =
  W.to_string
    (fun w () ->
      W.raw w "pp";
      W.varint w view;
      W.varint w seq;
      W.bytes w digest;
      W.varint w sender)
    ()

let preprepare_signing_bytes (pp : preprepare) =
  signing_bytes_of_proposal ~view:pp.view ~seq:pp.seq
    ~digest:(digest_of_batch pp.batch) ~sender:pp.sender

let preprepare_digest_signing_bytes (pd : preprepare_digest) =
  signing_bytes_of_proposal ~view:pd.pd_view ~seq:pd.pd_seq ~digest:pd.pd_digest
    ~sender:pd.pd_sender

let summarize (pp : preprepare) : preprepare_digest =
  { pd_view = pp.view;
    pd_seq = pp.seq;
    pd_digest = digest_of_batch pp.batch;
    pd_sender = pp.sender;
    pd_sig = pp.pp_sig }

let write_preprepare_digest w (pd : preprepare_digest) =
  W.varint w pd.pd_view;
  W.varint w pd.pd_seq;
  W.bytes w pd.pd_digest;
  W.varint w pd.pd_sender;
  W.bytes w pd.pd_sig

let read_preprepare_digest r : preprepare_digest =
  let pd_view = R.varint r in
  let pd_seq = R.varint r in
  let pd_digest = R.bytes r in
  let pd_sender = R.varint r in
  let pd_sig = R.bytes r in
  { pd_view; pd_seq; pd_digest; pd_sender; pd_sig }

(* ----- prepare ----- *)

let write_prepare_core w (p : prepare) =
  W.varint w p.view;
  W.varint w p.seq;
  W.bytes w p.digest;
  W.varint w p.sender

let write_prepare w p =
  write_prepare_core w p;
  W.bytes w p.p_sig

let read_prepare r : prepare =
  let view = R.varint r in
  let seq = R.varint r in
  let digest = R.bytes r in
  let sender = R.varint r in
  let p_sig = R.bytes r in
  { view; seq; digest; sender; p_sig }

let prepare_signing_bytes p =
  W.to_string (fun w p -> W.raw w "p"; write_prepare_core w p) p

(* ----- commit ----- *)

let write_commit_core w (c : commit) =
  W.varint w c.view;
  W.varint w c.seq;
  W.bytes w c.digest;
  W.varint w c.sender

let write_commit w c =
  write_commit_core w c;
  W.bytes w c.c_sig

let read_commit r : commit =
  let view = R.varint r in
  let seq = R.varint r in
  let digest = R.bytes r in
  let sender = R.varint r in
  let c_sig = R.bytes r in
  { view; seq; digest; sender; c_sig }

let commit_signing_bytes c =
  W.to_string (fun w c -> W.raw w "c"; write_commit_core w c) c

(* ----- checkpoint ----- *)

let write_checkpoint_core w (ck : checkpoint) =
  W.varint w ck.seq;
  W.bytes w ck.state_digest;
  W.varint w ck.sender

let write_checkpoint w ck =
  write_checkpoint_core w ck;
  W.bytes w ck.ck_sig

let read_checkpoint r : checkpoint =
  let seq = R.varint r in
  let state_digest = R.bytes r in
  let sender = R.varint r in
  let ck_sig = R.bytes r in
  { seq; state_digest; sender; ck_sig }

let checkpoint_signing_bytes ck =
  W.to_string (fun w ck -> W.raw w "ck"; write_checkpoint_core w ck) ck

(* ----- reply ----- *)

let write_reply w (rp : reply) =
  W.varint w rp.view;
  W.u64 w rp.timestamp;
  W.varint w rp.client;
  W.varint w rp.sender;
  W.bytes w rp.result;
  W.bytes w rp.r_auth

let read_reply r : reply =
  let view = R.varint r in
  let timestamp = R.u64 r in
  let client = R.varint r in
  let sender = R.varint r in
  let result = R.bytes r in
  let r_auth = R.bytes r in
  { view; timestamp; client; sender; result; r_auth }

let reply_auth_bytes (rp : reply) =
  W.to_string
    (fun w () ->
      W.raw w "reply-auth";
      W.varint w rp.view;
      W.u64 w rp.timestamp;
      W.varint w rp.client;
      W.varint w rp.sender;
      W.bytes w rp.result)
    ()

(* ----- viewchange ----- *)

let write_prepared_proof w (p : prepared_proof) =
  write_preprepare_digest w p.proof_preprepare;
  W.list w write_prepare p.proof_prepares

let read_prepared_proof r : prepared_proof =
  let proof_preprepare = read_preprepare_digest r in
  let proof_prepares = R.list r read_prepare in
  { proof_preprepare; proof_prepares }

let write_viewchange_core w (vc : viewchange) =
  W.varint w vc.vc_new_view;
  W.varint w vc.vc_last_stable;
  W.list w write_checkpoint vc.vc_checkpoint_proof;
  W.list w write_prepared_proof vc.vc_prepared;
  W.varint w vc.vc_sender

let write_viewchange w vc =
  write_viewchange_core w vc;
  W.bytes w vc.vc_sig

let read_viewchange r : viewchange =
  let vc_new_view = R.varint r in
  let vc_last_stable = R.varint r in
  let vc_checkpoint_proof = R.list r read_checkpoint in
  let vc_prepared = R.list r read_prepared_proof in
  let vc_sender = R.varint r in
  let vc_sig = R.bytes r in
  { vc_new_view; vc_last_stable; vc_checkpoint_proof; vc_prepared; vc_sender; vc_sig }

let viewchange_signing_bytes vc =
  W.to_string (fun w vc -> W.raw w "vc"; write_viewchange_core w vc) vc

(* ----- newview ----- *)

let write_newview_core w (nv : newview) =
  W.varint w nv.nv_view;
  W.list w write_viewchange nv.nv_viewchanges;
  W.list w write_preprepare_digest nv.nv_preprepares;
  W.varint w nv.nv_sender

let write_newview w nv =
  write_newview_core w nv;
  W.bytes w nv.nv_sig

let read_newview r : newview =
  let nv_view = R.varint r in
  let nv_viewchanges = R.list r read_viewchange in
  let nv_preprepares = R.list r read_preprepare_digest in
  let nv_sender = R.varint r in
  let nv_sig = R.bytes r in
  { nv_view; nv_viewchanges; nv_preprepares; nv_sender; nv_sig }

let newview_signing_bytes nv =
  W.to_string (fun w nv -> W.raw w "nv"; write_newview_core w nv) nv

(* ----- session handshake ----- *)

let write_session_init w (s : session_init) = W.varint w s.si_client
let read_session_init r : session_init = { si_client = R.varint r }

let write_session_quote_core w (s : session_quote) =
  W.varint w s.sq_replica;
  W.bytes w s.sq_quote;
  W.bytes w s.sq_box_public;
  W.bytes w s.sq_nonce

let write_session_quote w s =
  write_session_quote_core w s;
  W.bytes w s.sq_sig

let read_session_quote r : session_quote =
  let sq_replica = R.varint r in
  let sq_quote = R.bytes r in
  let sq_box_public = R.bytes r in
  let sq_nonce = R.bytes r in
  let sq_sig = R.bytes r in
  { sq_replica; sq_quote; sq_box_public; sq_nonce; sq_sig }

let session_quote_signing_bytes s =
  W.to_string (fun w s -> W.raw w "sq"; write_session_quote_core w s) s

let write_session_key w (s : session_key) =
  W.varint w s.sk_client;
  W.varint w s.sk_replica;
  W.bytes w s.sk_box

let read_session_key r : session_key =
  let sk_client = R.varint r in
  let sk_replica = R.varint r in
  let sk_box = R.bytes r in
  { sk_client; sk_replica; sk_box }

let write_session_ack w (s : session_ack) =
  W.varint w s.sa_replica;
  W.varint w s.sa_client;
  W.bytes w s.sa_auth

let read_session_ack r : session_ack =
  let sa_replica = R.varint r in
  let sa_client = R.varint r in
  let sa_auth = R.bytes r in
  { sa_replica; sa_client; sa_auth }

let session_ack_auth_bytes (s : session_ack) =
  W.to_string
    (fun w () ->
      W.raw w "sa-auth";
      W.varint w s.sa_replica;
      W.varint w s.sa_client)
    ()

let write_batch_fetch w (b : batch_fetch) =
  W.bytes w b.bf_digest;
  W.varint w b.bf_requester

let read_batch_fetch r : batch_fetch =
  let bf_digest = R.bytes r in
  let bf_requester = R.varint r in
  { bf_digest; bf_requester }

let write_batch_data w (b : batch_data) = W.list w write_request b.bd_batch
let read_batch_data r : batch_data = { bd_batch = R.list r read_request }

(* ----- state transfer ----- *)

let write_state_request w (s : state_request) =
  W.varint w s.sr_requester;
  W.varint w s.sr_from

let read_state_request r : state_request =
  let sr_requester = R.varint r in
  let sr_from = R.varint r in
  { sr_requester; sr_from }

let write_state_entry w (e : state_entry) =
  W.varint w e.se_seq;
  W.bytes w e.se_digest;
  W.list w write_request e.se_batch

let read_state_entry r : state_entry =
  let se_seq = R.varint r in
  let se_digest = R.bytes r in
  let se_batch = R.list r read_request in
  { se_seq; se_digest; se_batch }

let write_state_reply w (s : state_reply) =
  W.varint w s.st_replier;
  W.varint w s.st_requester;
  W.varint w s.st_stable;
  W.list w write_checkpoint s.st_proof;
  W.bytes w s.st_snapshot;
  W.varint w s.st_view;
  W.list w write_state_entry s.st_entries

let read_state_reply r : state_reply =
  let st_replier = R.varint r in
  let st_requester = R.varint r in
  let st_stable = R.varint r in
  let st_proof = R.list r read_checkpoint in
  let st_snapshot = R.bytes r in
  let st_view = R.varint r in
  let st_entries = R.list r read_state_entry in
  { st_replier; st_requester; st_stable; st_proof; st_snapshot; st_view; st_entries }

(* ----- ledger followers (read replicas) ----- *)

let write_ledger_subscribe w (s : ledger_subscribe) =
  W.varint w s.lsu_follower;
  W.varint w s.lsu_from

let read_ledger_subscribe r : ledger_subscribe =
  let lsu_follower = R.varint r in
  let lsu_from = R.varint r in
  { lsu_follower; lsu_from }

let write_ledger_feed w (f : ledger_feed) =
  W.varint w f.lf_replica;
  W.varint w f.lf_tip;
  W.varint w f.lf_base;
  W.list w W.bytes f.lf_records

let read_ledger_feed r : ledger_feed =
  let lf_replica = R.varint r in
  let lf_tip = R.varint r in
  let lf_base = R.varint r in
  let lf_records = R.list r R.bytes in
  { lf_replica; lf_tip; lf_base; lf_records }

let write_read_request w (rr : read_request) =
  W.varint w rr.rr_client;
  W.u64 w rr.rr_ts;
  W.bytes w rr.rr_op

let read_read_request r : read_request =
  let rr_client = R.varint r in
  let rr_ts = R.u64 r in
  let rr_op = R.bytes r in
  { rr_client; rr_ts; rr_op }

let write_read_reply w (rd : read_reply) =
  W.varint w rd.rd_follower;
  W.varint w rd.rd_client;
  W.u64 w rd.rd_ts;
  W.varint w rd.rd_seq;
  W.varint w rd.rd_lag;
  W.bytes w rd.rd_result

let read_read_reply r : read_reply =
  let rd_follower = R.varint r in
  let rd_client = R.varint r in
  let rd_ts = R.u64 r in
  let rd_seq = R.varint r in
  let rd_lag = R.varint r in
  let rd_result = R.bytes r in
  { rd_follower; rd_client; rd_ts; rd_seq; rd_lag; rd_result }

(* ----- top-level ----- *)

let encode_into w msg =
  W.u8 w (tag msg);
  match msg with
  | Request x -> write_request w x
  | Preprepare x -> write_preprepare w x
  | Preprepare_digest x -> write_preprepare_digest w x
  | Prepare x -> write_prepare w x
  | Commit x -> write_commit w x
  | Checkpoint x -> write_checkpoint w x
  | Reply x -> write_reply w x
  | Viewchange x -> write_viewchange w x
  | Newview x -> write_newview w x
  | Session_init x -> write_session_init w x
  | Session_quote x -> write_session_quote w x
  | Session_key x -> write_session_key w x
  | Session_ack x -> write_session_ack w x
  | Batch_fetch x -> write_batch_fetch w x
  | Batch_data x -> write_batch_data w x
  | State_request x -> write_state_request w x
  | State_reply x -> write_state_reply w x
  | Ledger_subscribe x -> write_ledger_subscribe w x
  | Ledger_feed x -> write_ledger_feed w x
  | Read_request x -> write_read_request w x
  | Read_reply x -> write_read_reply w x

let encode msg = W.to_string encode_into msg

let decode_exact s =
  R.parse
    (fun r ->
      match R.u8 r with
      | 1 -> Request (read_request r)
      | 2 -> Preprepare (read_preprepare r)
      | 3 -> Prepare (read_prepare r)
      | 4 -> Commit (read_commit r)
      | 5 -> Checkpoint (read_checkpoint r)
      | 6 -> Reply (read_reply r)
      | 7 -> Viewchange (read_viewchange r)
      | 8 -> Newview (read_newview r)
      | 9 -> Session_init (read_session_init r)
      | 10 -> Session_quote (read_session_quote r)
      | 11 -> Session_key (read_session_key r)
      | 12 -> Session_ack (read_session_ack r)
      | 13 -> Preprepare_digest (read_preprepare_digest r)
      | 14 -> Batch_fetch (read_batch_fetch r)
      | 15 -> Batch_data (read_batch_data r)
      | 16 -> State_request (read_state_request r)
      | 17 -> State_reply (read_state_reply r)
      | 18 -> Ledger_subscribe (read_ledger_subscribe r)
      | 19 -> Ledger_feed (read_ledger_feed r)
      | 20 -> Read_request (read_read_request r)
      | 21 -> Read_reply (read_read_reply r)
      | t -> raise (R.Error (Printf.sprintf "unknown message tag %d" t)))
    s

(* ----- optional trace context (backward-compatible trailer) -----

   The context rides [Trace_ctx.trailer_len] bytes after the message's
   normal encoding, so pre-tracing encodings (and sealed/persisted
   blobs) remain valid and [encode] itself is byte-stable.  Stripping
   keys on a two-byte magic suffix, which can collide with the tail of a
   legacy message; the exact-parse fallback below resolves that case
   correctly (the stripped prefix of a real legacy message cannot also
   be a complete valid encoding, since every encoding is parsed to
   exhaustion). *)

let encode_traced ?ctx msg = Trace_ctx.append ctx (encode msg)

let decode_traced s =
  match Trace_ctx.strip s with
  | body, (Some _ as ctx) -> (
    match decode_exact body with
    | Ok msg -> Ok (msg, ctx)
    | Error _ -> (
      match decode_exact s with
      | Ok msg -> Ok (msg, None)
      | Error e -> Error e))
  | _, None -> (
    match decode_exact s with Ok msg -> Ok (msg, None) | Error e -> Error e)

(* Trailer-tolerant: every legacy call site keeps working when handed a
   traced payload, it just does not see the context. *)
let decode s = Result.map fst (decode_traced s)

let peek_tag s = if String.length s = 0 then None else Some (Char.code s.[0])

let pp ppf msg =
  match msg with
  | Request r -> Format.fprintf ppf "request(c=%d ts=%Ld)" r.client r.timestamp
  | Preprepare pp' ->
    Format.fprintf ppf "preprepare(v=%d n=%d |b|=%d from %d)" pp'.view pp'.seq
      (List.length pp'.batch) pp'.sender
  | Preprepare_digest pd ->
    Format.fprintf ppf "preprepare-digest(v=%d n=%d from %d)" pd.pd_view pd.pd_seq
      pd.pd_sender
  | Prepare p -> Format.fprintf ppf "prepare(v=%d n=%d from %d)" p.view p.seq p.sender
  | Commit c -> Format.fprintf ppf "commit(v=%d n=%d from %d)" c.view c.seq c.sender
  | Checkpoint ck -> Format.fprintf ppf "checkpoint(n=%d from %d)" ck.seq ck.sender
  | Reply r -> Format.fprintf ppf "reply(c=%d ts=%Ld from %d)" r.client r.timestamp r.sender
  | Viewchange vc ->
    Format.fprintf ppf "viewchange(v'=%d stable=%d from %d)" vc.vc_new_view vc.vc_last_stable
      vc.vc_sender
  | Newview nv ->
    Format.fprintf ppf "newview(v=%d |pp|=%d from %d)" nv.nv_view
      (List.length nv.nv_preprepares) nv.nv_sender
  | Session_init s -> Format.fprintf ppf "session-init(c=%d)" s.si_client
  | Session_quote s -> Format.fprintf ppf "session-quote(from %d)" s.sq_replica
  | Session_key s -> Format.fprintf ppf "session-key(c=%d r=%d)" s.sk_client s.sk_replica
  | Session_ack s -> Format.fprintf ppf "session-ack(c=%d r=%d)" s.sa_client s.sa_replica
  | Batch_fetch b ->
    Format.fprintf ppf "batch-fetch(%s from %d)" (Splitbft_util.Hex.short b.bf_digest)
      b.bf_requester
  | Batch_data b -> Format.fprintf ppf "batch-data(|b|=%d)" (List.length b.bd_batch)
  | State_request s ->
    Format.fprintf ppf "state-request(from=%d by %d)" s.sr_from s.sr_requester
  | State_reply s ->
    Format.fprintf ppf "state-reply(stable=%d |e|=%d from %d)" s.st_stable
      (List.length s.st_entries) s.st_replier
  | Ledger_subscribe s ->
    Format.fprintf ppf "ledger-subscribe(f=%d from=%d)" s.lsu_follower s.lsu_from
  | Ledger_feed f ->
    Format.fprintf ppf "ledger-feed(tip=%d base=%d |e|=%d from %d)" f.lf_tip f.lf_base
      (List.length f.lf_records) f.lf_replica
  | Read_request rr -> Format.fprintf ppf "read-request(c=%d ts=%Ld)" rr.rr_client rr.rr_ts
  | Read_reply rd ->
    Format.fprintf ppf "read-reply(c=%d seq=%d lag=%d from f%d)" rd.rd_client rd.rd_seq
      rd.rd_lag rd.rd_follower
