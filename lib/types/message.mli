(** Protocol messages shared by the PBFT baseline and SplitBFT, with binary
    codecs and signing helpers.

    Every inter-replica message carries the sender id and a signature over
    its {e signing bytes} (the encoding with the signature field blanked),
    matching the paper's setup: signatures between replicas/enclaves, HMACs
    between clients and the service.  Certificates (prepared proofs, view
    changes, new views) nest already-signed messages so their signatures
    remain individually verifiable — the transferable authentication that
    Clement et al. showed is required. *)

type request = {
  client : Ids.client_id;
  timestamp : int64;  (** client-chosen, strictly increasing per client *)
  payload : string;  (** operation; AEAD ciphertext in SplitBFT *)
  auth : string;  (** client authenticator (protocol-specific semantics) *)
}

type preprepare = {
  view : Ids.view;
  seq : Ids.seqno;
  batch : request list;
  sender : Ids.replica_id;
  pp_sig : string;
}

type preprepare_digest = {
  pd_view : Ids.view;
  pd_seq : Ids.seqno;
  pd_digest : string;  (** batch digest *)
  pd_sender : Ids.replica_id;
  pd_sig : string;
}
(** Digest form of a PrePrepare.  The PrePrepare signature covers (view,
    seq, batch digest, sender), so the same signature verifies on both
    forms; the digest form is what the Confirmation compartment receives
    ("this compartment only handles a hash of the request batch", §6) and
    what view-change certificates carry, as in PBFT. *)

type prepare = {
  view : Ids.view;
  seq : Ids.seqno;
  digest : string;  (** batch digest *)
  sender : Ids.replica_id;
  p_sig : string;
}

type commit = {
  view : Ids.view;
  seq : Ids.seqno;
  digest : string;
  sender : Ids.replica_id;
  c_sig : string;
}

type checkpoint = {
  seq : Ids.seqno;
  state_digest : string;
  sender : Ids.replica_id;
  ck_sig : string;
}

type reply = {
  view : Ids.view;
  timestamp : int64;
  client : Ids.client_id;
  sender : Ids.replica_id;
  result : string;  (** AEAD ciphertext in SplitBFT *)
  r_auth : string;  (** HMAC under the client's session key *)
}

type prepared_proof = {
  proof_preprepare : preprepare_digest;
  proof_prepares : prepare list;
}
(** A prepare certificate: one PrePrepare (digest form) plus 2f matching
    Prepares. *)

type viewchange = {
  vc_new_view : Ids.view;
  vc_last_stable : Ids.seqno;
  vc_checkpoint_proof : checkpoint list;
  vc_prepared : prepared_proof list;
  vc_sender : Ids.replica_id;
  vc_sig : string;
}

type newview = {
  nv_view : Ids.view;
  nv_viewchanges : viewchange list;
  nv_preprepares : preprepare_digest list;
  nv_sender : Ids.replica_id;
  nv_sig : string;
}

(** Client/Execution session establishment (attestation handshake). *)

type session_init = { si_client : Ids.client_id }

type session_quote = {
  sq_replica : Ids.replica_id;
  sq_quote : string;  (** encoded attestation quote *)
  sq_box_public : string;
  sq_nonce : string;
      (** freshness nonce, distinct per enclave incarnation — lets a client
          distinguish a recovered enclave (which must be re-provisioned)
          from a retransmitted quote of one it already trusts *)
  sq_sig : string;  (** signature by the enclave's protocol key *)
}

type session_key = {
  sk_client : Ids.client_id;
  sk_replica : Ids.replica_id;
  sk_box : string;  (** session key encrypted to the enclave's box key *)
}

type session_ack = {
  sa_replica : Ids.replica_id;
  sa_client : Ids.client_id;
  sa_auth : string;  (** HMAC under the session key, proving receipt *)
}

type batch_fetch = { bf_digest : string; bf_requester : Ids.replica_id }
(** Content-addressed recovery of a committed batch's body (the request
    retransmission/fetch of PBFT): a replica that committed a digest
    without holding the full requests asks its peers.  The response needs
    no signature — the receiver checks the digest. *)

type batch_data = { bd_batch : request list }

type state_request = { sr_requester : Ids.replica_id; sr_from : Ids.seqno }
(** Broadcast by a recovering replica: "send me everything from [sr_from]
    on".  PBFT's state-transfer request; in SplitBFT it is served by the
    Execution compartment. *)

type state_entry = { se_seq : Ids.seqno; se_digest : string; se_batch : request list }
(** One decided log slot.  Content-addressed: the receiver recomputes the
    batch digest, so entries need no signature — but it waits for [f + 1]
    repliers agreeing on (seq, digest) before installing. *)

type state_reply = {
  st_replier : Ids.replica_id;
  st_requester : Ids.replica_id;
  st_stable : Ids.seqno;  (** replier's last stable checkpoint (0 = none) *)
  st_proof : checkpoint list;  (** quorum certificate for [st_stable] *)
  st_snapshot : string;
      (** application snapshot at [st_stable], matching the certified state
          digest; AEAD-sealed to the Execution identity in SplitBFT, plain
          in the PBFT baseline; [""] when the requester is past the stable
          point and only needs log entries *)
  st_view : Ids.view;
  st_entries : state_entry list;  (** decided suffix above the stable point *)
}

(** Ledger follower protocol (read replicas off the consensus path). *)

type ledger_subscribe = { lsu_follower : int; lsu_from : Ids.seqno }
(** Sent by a follower to every replica host: "stream me committed ledger
    records from [lsu_from] on".  Handled by the untrusted broker — the
    ledger records it serves are already sealed and chain-verified, so
    subscription needs no enclave transition. *)

type ledger_feed = {
  lf_replica : Ids.replica_id;
  lf_tip : Ids.seqno;  (** highest entry this replica has appended *)
  lf_base : Ids.seqno;  (** compaction floor (0 = nothing compacted) *)
  lf_records : string list;  (** encoded ledger entry records, seq order *)
}
(** Entry records are unsigned but content-addressed: a follower installs a
    slot only once [f + 1] distinct replicas feed byte-identical entry
    content (the same vouching rule as {!state_entry}). *)

type read_request = { rr_client : Ids.client_id; rr_ts : int64; rr_op : string }
(** A stale-bounded read addressed to a follower.  [rr_op] is AEAD-protected
    under the follower read channel when the protocol is confidential. *)

type read_reply = {
  rd_follower : int;
  rd_client : Ids.client_id;
  rd_ts : int64;
  rd_seq : Ids.seqno;  (** applied prefix the read was served at *)
  rd_lag : int;  (** vouched cluster tip minus [rd_seq] at serve time *)
  rd_result : string;
}

type t =
  | Request of request
  | Preprepare of preprepare
  | Preprepare_digest of preprepare_digest
  | Prepare of prepare
  | Commit of commit
  | Checkpoint of checkpoint
  | Reply of reply
  | Viewchange of viewchange
  | Newview of newview
  | Session_init of session_init
  | Session_quote of session_quote
  | Session_key of session_key
  | Session_ack of session_ack
  | Batch_fetch of batch_fetch
  | Batch_data of batch_data
  | State_request of state_request
  | State_reply of state_reply
  | Ledger_subscribe of ledger_subscribe
  | Ledger_feed of ledger_feed
  | Read_request of read_request
  | Read_reply of read_reply

val tag : t -> int
val type_name : t -> string

(** {2 Digests} *)

val digest_of_request : request -> string
val digest_of_batch : request list -> string

val batch_preimage : request list -> string
(** The exact bytes {!digest_of_batch} hashes — lets a caller memoize the
    digest under a key it can build without hashing. *)

val empty_batch_digest : string
(** [digest_of_batch []], the digest of the no-op filler batch used to plug
    sequence-number gaps in a NewView. *)

val summarize : preprepare -> preprepare_digest
(** Digest form of a full PrePrepare (shares its signature). *)

(** {2 Codec} *)

val encode : t -> string

val decode : string -> (t, string) result
(** Trailer-tolerant: accepts both plain encodings and encodings carrying
    a trace-context trailer (the context is dropped — use
    {!decode_traced} to see it). *)

val encode_traced : ?ctx:Splitbft_obs.Trace_ctx.t -> t -> string
(** [encode] plus an optional trace-context trailer
    ({!Splitbft_obs.Trace_ctx.append}); without [ctx] this {e is}
    [encode], byte for byte, so pre-tracing peers and persisted blobs
    stay compatible. *)

val decode_traced : string -> (t * Splitbft_obs.Trace_ctx.t option, string) result
(** Decodes a message and its trace context, if one rides on it.
    Encodings from before the trailer existed decode with [None]; a
    legacy message whose tail coincidentally matches the trailer magic
    is resolved by exact-parse fallback. *)

val encode_into : Splitbft_codec.Writer.t -> t -> unit
(** Appends the encoding of the message to an existing writer; together
    with {!Splitbft_codec.Writer.nested} this lets containers embed a
    length-prefixed message without serializing it into a fresh buffer
    first. *)

val peek_tag : string -> int option
(** Message tag without a full decode (broker routing). *)

val encode_request : request -> string
val encode_request_into : Splitbft_codec.Writer.t -> request -> unit
val decode_request : string -> (request, string) result

(** {2 Signing bytes}

    The encoding of a message with its signature field blanked; what the
    sender signs and the receiver verifies. *)

val signing_bytes_of_proposal :
  view:Ids.view -> seq:Ids.seqno -> digest:string -> sender:Ids.replica_id -> string
(** Proposal signing bytes from an already-computed batch digest
    ({!preprepare_signing_bytes} re-hashes the batch to obtain it). *)

val preprepare_signing_bytes : preprepare -> string
val preprepare_digest_signing_bytes : preprepare_digest -> string
val prepare_signing_bytes : prepare -> string
val commit_signing_bytes : commit -> string
val checkpoint_signing_bytes : checkpoint -> string
val viewchange_signing_bytes : viewchange -> string
val newview_signing_bytes : newview -> string
val session_quote_signing_bytes : session_quote -> string

val request_auth_bytes : request -> string
(** Bytes covered by the client authenticator. *)

val reply_auth_bytes : reply -> string
(** Bytes covered by the reply HMAC. *)

val session_ack_auth_bytes : session_ack -> string

(** {2 Convenience} *)

val pp : Format.formatter -> t -> unit
(** One-line summary for traces. *)
