(** Certificate and quorum validation.

    These checks embody principle P5 of the paper: a compartment acts only
    on quorum certificates, never on individual messages, so a single
    faulty sender cannot corrupt the receiving compartment.  Verification
    is pure; callers charge the metered signature-verification costs. *)

type key_lookup = Ids.replica_id -> Splitbft_crypto.Signature.public option
(** Resolves the signing key of a peer (per-compartment tables in SplitBFT,
    per-replica in the PBFT baseline). *)

val distinct_senders : int list -> bool

(** {2 Signature checks} *)

val verify_with : key_lookup -> Ids.replica_id -> string -> string -> bool
(** [verify_with lookup sender bytes signature] — the primitive every
    [verify_*] below reduces to; exposed so callers can verify against
    signing bytes they already hold (e.g. re-using a batch digest computed
    once instead of re-hashing inside {!verify_preprepare}). *)

val verify_preprepare : key_lookup -> Message.preprepare -> bool
val verify_preprepare_digest : key_lookup -> Message.preprepare_digest -> bool
val verify_prepare : key_lookup -> Message.prepare -> bool
val verify_commit : key_lookup -> Message.commit -> bool
val verify_checkpoint : key_lookup -> Message.checkpoint -> bool
val verify_viewchange : key_lookup -> Message.viewchange -> bool
val verify_newview : key_lookup -> Message.newview -> bool

(** {2 Certificates} *)

val prepare_cert_complete :
  f:int -> Message.preprepare_digest -> Message.prepare list -> bool
(** One PrePrepare (digest form) plus at least [2f] Prepares from distinct
    senders, all matching (view, seq, batch digest) and none sent by the
    PrePrepare's sender. *)

val verify_prepared_proof : f:int -> key_lookup -> Message.prepared_proof -> bool
(** {!prepare_cert_complete} plus signature checks on every element. *)

val commit_quorum_complete :
  quorum:int -> view:Ids.view -> seq:Ids.seqno -> digest:string ->
  Message.commit list -> bool

val checkpoint_quorum_complete : quorum:int -> Message.checkpoint list -> bool
(** At least [quorum] checkpoints from distinct senders agreeing on
    (seq, state digest). *)

val checkpoint_quorum_seq : quorum:int -> Message.checkpoint list -> Ids.seqno option
(** The sequence number proven stable by the given set, if any. *)

val verify_viewchange_deep :
  f:int ->
  vc_lookup:key_lookup ->
  ckpt_lookup:key_lookup ->
  proof_lookup:key_lookup ->
  Message.viewchange ->
  bool
(** Signature of the ViewChange itself ([vc_lookup] — Confirmation enclaves
    in SplitBFT), of every checkpoint in its proof ([ckpt_lookup] —
    Execution enclaves), and of every nested prepared proof
    ([proof_lookup] — Preparation enclaves); checks the checkpoint quorum
    covers [vc_last_stable].  The PBFT baseline passes the same replica
    table for all three. *)
