(* Bounded LRU map: hash table plus an intrusive doubly-linked recency
   list, so find/add/evict are all O(1) and memory is strictly bounded by
   the capacity.  Used inside the enclaves (verified-digest cache) and by
   the untrusted broker (retransmit reply cache), so it must not allocate
   proportionally to the history it has seen. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type 'a t = {
  capacity : int;
  table : (string, 'a node) Hashtbl.t;
  mutable first : 'a node option;  (* most recently used *)
  mutable last : 'a node option;  (* eviction candidate *)
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  { capacity;
    table = Hashtbl.create (min 1024 (max 16 capacity));
    first = None;
    last = None;
    hits = 0;
    misses = 0 }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.first <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.last <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.first;
  (match t.first with Some f -> f.prev <- Some node | None -> t.last <- Some node);
  t.first <- Some node

let find t key =
  match Hashtbl.find_opt t.table key with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some node ->
    t.hits <- t.hits + 1;
    unlink t node;
    push_front t node;
    Some node.value

let mem t key = find t key <> None

let evict_last t =
  match t.last with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key

let add t key value =
  if t.capacity > 0 then begin
    (match Hashtbl.find_opt t.table key with
    | Some node ->
      node.value <- value;
      unlink t node;
      push_front t node
    | None ->
      if Hashtbl.length t.table >= t.capacity then evict_last t;
      let node = { key; value; prev = None; next = None } in
      Hashtbl.replace t.table key node;
      push_front t node)
  end

let clear t =
  Hashtbl.reset t.table;
  t.first <- None;
  t.last <- None

let fold t ~init ~f =
  let rec go acc = function
    | None -> acc
    | Some node -> go (f acc node.key node.value) node.next
  in
  go init t.first
