(** Bounded least-recently-used map with O(1) find/add/evict and strictly
    capacity-bounded memory.

    Shared by the enclaves' verified-digest caches (inside the trust
    boundary) and the broker's retransmit reply cache (outside it); both
    run on hot paths of unbounded-length executions, so the structure must
    never grow with history. *)

type 'a t

val create : capacity:int -> 'a t
(** A capacity of [0] is legal and makes every operation a no-op miss
    (the "cache disabled" configuration).  Raises [Invalid_argument] on
    negative capacity. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** Promotes the entry to most-recently-used and counts a hit; absent
    keys count a miss. *)

val mem : 'a t -> string -> bool
(** [find <> None] — promotes and counts like {!find}. *)

val add : 'a t -> string -> 'a -> unit
(** Inserts or overwrites (promoting to most-recently-used), evicting the
    least-recently-used entry when the capacity is exceeded. *)

val clear : 'a t -> unit
(** Drops every entry; hit/miss statistics are preserved. *)

val hits : 'a t -> int
val misses : 'a t -> int
(** Lifetime lookup statistics (survive {!clear}). *)

val fold : 'a t -> init:'b -> f:('b -> string -> 'a -> 'b) -> 'b
(** Most- to least-recently-used order. *)
