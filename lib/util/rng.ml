type t = { mutable state : int64 }

let create seed = { state = seed }
let copy t = { state = t.state }

(* SplitMix64 (Steele, Lea, Flood 2014): a tiny, well-tested generator whose
   whole state is one 64-bit word, which keeps copies and splits cheap. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create (next64 t)

(* Keyed derivation: the stream for [(seed, domain, stream)] depends only on
   those three values — not on how many other generators were split off the
   seed first.  [domain] separates independent consumers sharing a stream
   numbering (e.g. client #3's session keys vs simulated identity #3's op
   choices) so equal stream ids never alias across subsystems. *)
let of_key seed ~domain ~stream =
  let h =
    String.fold_left
      (fun acc c -> mix (Int64.add acc (Int64.of_int (Char.code c))))
      (mix seed) domain
  in
  create (mix (Int64.add h (Int64.mul stream golden_gamma)))

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (next64 t) 1) land max_int in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  (* 53 significant bits, as in the stdlib. *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (int t 256))
  done;
  Bytes.unsafe_to_string b

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))
