(** Deterministic pseudo-random number generator (SplitMix64).

    Every source of randomness in the simulator flows through an explicit
    generator value so that experiments are reproducible from a seed. *)

type t

val create : int64 -> t
(** [create seed] is a fresh generator. *)

val copy : t -> t
(** Independent copy with the same internal state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator seeded from it,
    statistically independent of subsequent draws from [t]. *)

val of_key : int64 -> domain:string -> stream:int64 -> t
(** [of_key seed ~domain ~stream] is a generator determined purely by the
    triple — unlike {!split}, it does not depend on any other generator's
    draw order, so stream [(seed, domain, i)] is reproducible regardless
    of how many sibling streams exist.  [domain] namespaces independent
    consumers that both number their streams from 0. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean. *)

val bytes : t -> int -> string
(** [bytes t n] is a string of [n] pseudo-random bytes. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniformly random element of a non-empty list. *)
