type t = {
  mutable samples : float array;
  mutable size : int;
  mutable sorted : bool;
}

let create () = { samples = [||]; size = 0; sorted = true }

let add t x =
  let cap = Array.length t.samples in
  if t.size >= cap then begin
    let data = Array.make (Stdlib.max 64 (2 * cap)) 0.0 in
    Array.blit t.samples 0 data 0 t.size;
    t.samples <- data
  end;
  t.samples.(t.size) <- x;
  t.size <- t.size + 1;
  t.sorted <- false

let count t = t.size

let total t =
  let acc = ref 0.0 in
  for i = 0 to t.size - 1 do
    acc := !acc +. t.samples.(i)
  done;
  !acc

let mean t = if t.size = 0 then nan else total t /. float_of_int t.size

let fold_extreme op init t =
  let acc = ref init in
  for i = 0 to t.size - 1 do
    acc := op !acc t.samples.(i)
  done;
  !acc

let min t = if t.size = 0 then nan else fold_extreme Stdlib.min infinity t
let max t = if t.size = 0 then nan else fold_extreme Stdlib.max neg_infinity t

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.size in
    Array.sort compare live;
    Array.blit live 0 t.samples 0 t.size;
    t.sorted <- true
  end

let percentile t p =
  if t.size = 0 then nan
  else begin
    ensure_sorted t;
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (t.size - 1) in
    let lo = int_of_float (Float.floor rank) in
    let lo = Stdlib.max 0 (Stdlib.min (t.size - 1) lo) in
    let hi = Stdlib.min (t.size - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    t.samples.(lo) +. (frac *. (t.samples.(hi) -. t.samples.(lo)))
  end

let median t = percentile t 50.0

let stddev t =
  if t.size < 2 then 0.0
  else begin
    let m = mean t in
    let acc = ref 0.0 in
    for i = 0 to t.size - 1 do
      let d = t.samples.(i) -. m in
      acc := !acc +. (d *. d)
    done;
    sqrt (!acc /. float_of_int (t.size - 1))
  end

let merge a b =
  let t = create () in
  for i = 0 to a.size - 1 do
    add t a.samples.(i)
  done;
  for i = 0 to b.size - 1 do
    add t b.samples.(i)
  done;
  t

let pp_summary ppf t =
  Format.fprintf ppf "n=%d mean=%.2f p50=%.2f p99=%.2f min=%.2f max=%.2f"
    (count t) (mean t) (median t) (percentile t 99.0) (min t) (max t)
