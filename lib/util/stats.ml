(* Sample collection with a bounded reservoir.

   Count / total / mean / min / max / stddev come from exact running
   accumulators regardless of how many samples were observed; order
   statistics (percentiles) come from the sample store, which switches
   from exact to uniform reservoir sampling (algorithm R) once [cap]
   observations have been seen, so unbounded runs hold bounded memory.
   The reservoir's RNG is its own deterministic xorshift64* stream — it
   must not perturb (or be perturbed by) the simulation's seeded RNGs. *)

type t = {
  cap : int;
  mutable samples : float array;
  mutable size : int;  (* live entries in [samples] *)
  mutable sorted : bool;
  mutable n : int;  (* observations ever *)
  mutable sum : float;
  mutable sumsq : float;
  mutable mn : float;
  mutable mx : float;
  mutable rng : int64;
}

let default_cap = 65536

let create ?(cap = default_cap) () =
  if cap < 1 then invalid_arg "Stats.create: cap < 1";
  { cap;
    samples = [||];
    size = 0;
    sorted = true;
    n = 0;
    sum = 0.0;
    sumsq = 0.0;
    mn = infinity;
    mx = neg_infinity;
    rng = 0x9E3779B97F4A7C15L }

let cap t = t.cap

let rand_below t bound =
  let x = t.rng in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.rng <- x;
  Int64.to_int (Int64.rem (Int64.logand x Int64.max_int) (Int64.of_int bound))

let store t i x =
  let alloc = Array.length t.samples in
  if i >= alloc then begin
    let data = Array.make (Stdlib.min t.cap (Stdlib.max 64 (2 * alloc))) 0.0 in
    Array.blit t.samples 0 data 0 t.size;
    t.samples <- data
  end;
  t.samples.(i) <- x;
  t.sorted <- false

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x;
  if t.size < t.cap then begin
    store t t.size x;
    t.size <- t.size + 1
  end
  else begin
    (* Reservoir: keep each of the n observations with probability cap/n. *)
    let j = rand_below t t.n in
    if j < t.cap then store t j x
  end

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then nan else t.sum /. float_of_int t.n
let min t = if t.n = 0 then nan else t.mn
let max t = if t.n = 0 then nan else t.mx
let is_empty t = t.n = 0
let mean_opt t = if t.n = 0 then None else Some (t.sum /. float_of_int t.n)
let min_opt t = if t.n = 0 then None else Some t.mn
let max_opt t = if t.n = 0 then None else Some t.mx

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.size in
    Array.sort compare live;
    Array.blit live 0 t.samples 0 t.size;
    t.sorted <- true
  end

let percentile t p =
  if t.size = 0 then nan
  else begin
    ensure_sorted t;
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (t.size - 1) in
    let lo = int_of_float (Float.floor rank) in
    let lo = Stdlib.max 0 (Stdlib.min (t.size - 1) lo) in
    let hi = Stdlib.min (t.size - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    t.samples.(lo) +. (frac *. (t.samples.(hi) -. t.samples.(lo)))
  end

let median t = percentile t 50.0
let percentile_opt t p = if t.size = 0 then None else Some (percentile t p)

(* Total-window guard for code paths that feed JSON/records: an empty
   window yields 0 rather than letting nan propagate into snapshots. *)
let percentile_or0 t p = if t.size = 0 then 0.0 else percentile t p
let mean_or0 t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.0
  else
    let n = float_of_int t.n in
    let var = (t.sumsq -. (t.sum *. t.sum /. n)) /. (n -. 1.0) in
    sqrt (Float.max 0.0 var)

let merge a b =
  let t = create ~cap:(Stdlib.max a.cap b.cap) () in
  for i = 0 to a.size - 1 do
    add t a.samples.(i)
  done;
  for i = 0 to b.size - 1 do
    add t b.samples.(i)
  done;
  (* The reservoir above holds both sample sets; the exact moments are
     the sums of the inputs' exact moments, not of their reservoirs. *)
  t.n <- a.n + b.n;
  t.sum <- a.sum +. b.sum;
  t.sumsq <- a.sumsq +. b.sumsq;
  t.mn <- Stdlib.min a.mn b.mn;
  t.mx <- Stdlib.max a.mx b.mx;
  t

let pp_summary ppf t =
  if is_empty t then Format.fprintf ppf "n=0 (no samples)"
  else
    Format.fprintf ppf "n=%d mean=%.2f p50=%.2f p99=%.2f min=%.2f max=%.2f"
      (count t) (mean t) (median t) (percentile t 99.0) (min t) (max t)
