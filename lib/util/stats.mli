(** Online collection of scalar samples (latencies, sizes) with summary
    statistics used by the experiment harness.

    Memory is bounded: the collector stores at most [cap] samples
    (default {!default_cap} = 65536), switching to uniform reservoir
    sampling (algorithm R, its own deterministic RNG stream) once more
    observations arrive.  [count], [total], [mean], [min], [max] and
    [stddev] stay exact via running accumulators; percentiles are exact
    up to [cap] observations and reservoir estimates beyond. *)

type t

val default_cap : int

val create : ?cap:int -> unit -> t
val cap : t -> int

val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]] (clamped): linear interpolation
    between the adjacent order statistics at rank [p/100 * (n-1)], so
    small samples don't collapse p99 onto the maximum or bias p50.
    Returns [nan] when empty. *)

val median : t -> float
val stddev : t -> float

(** {2 Empty-window guards}

    The plain accessors above return [nan] on an empty collector (and
    JSON encodes non-finite floats as [null]); these variants make the
    empty case explicit so callers that feed records or snapshots never
    see a nan at all. *)

val is_empty : t -> bool
val mean_opt : t -> float option
val min_opt : t -> float option
val max_opt : t -> float option

val percentile_opt : t -> float -> float option
(** [None] when no samples were observed, otherwise {!percentile}. *)

val percentile_or0 : t -> float -> float
(** [0.0] when empty — for result records and JSON snapshots where a
    zero reads as "no data" and a nan would poison downstream math. *)

val mean_or0 : t -> float

val merge : t -> t -> t
(** New collector over both sample sets (cap = max of the inputs');
    exact statistics are combined exactly, percentiles reflect the
    merged reservoirs. *)

val pp_summary : Format.formatter -> t -> unit
