(** Online collection of scalar samples (latencies, sizes) with summary
    statistics used by the experiment harness. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]] (clamped): linear interpolation
    between the adjacent order statistics at rank [p/100 * (n-1)], so
    small samples don't collapse p99 onto the maximum or bias p50.
    Returns [nan] when empty. *)

val median : t -> float
val stddev : t -> float

val merge : t -> t -> t
(** New collector holding the samples of both arguments. *)

val pp_summary : Format.formatter -> t -> unit
