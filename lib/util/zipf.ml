(* CDF-table Zipfian sampler.  The table costs O(n) floats once at setup;
   each sample is one uniform draw plus a binary search, so the open-loop
   generator can draw millions of keys without per-draw allocation. *)

type t = { cdf : float array }

let create ?(s = 0.99) ~n () =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0.0 then invalid_arg "Zipf.create: exponent must be non-negative";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) s);
    cdf.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  { cdf }

let n t = Array.length t.cdf

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* Smallest index with cdf.(i) >= u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo
