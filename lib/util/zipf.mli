(** Zipfian (power-law) rank sampler over [0 .. n-1], the standard model
    for skewed key popularity (YCSB uses s = 0.99).  [s = 0] degenerates
    to the uniform distribution. *)

type t

val create : ?s:float -> n:int -> unit -> t
(** [create ~s ~n ()] precomputes the CDF of a Zipf distribution with
    exponent [s] (default 0.99) over ranks [0 .. n-1].  Raises
    [Invalid_argument] when [n <= 0] or [s < 0]. *)

val n : t -> int

val sample : t -> Rng.t -> int
(** One rank, rank 0 most popular; O(log n), allocation-free. *)
