(* Randomized fault-schedule property tests: for arbitrary seeds and
   within-bound fault placements, the protocols must preserve agreement
   among honest replicas and never hand a client a wrong result.  This is
   the property-based counterpart of the hand-written Table 1 scenarios. *)

module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module S = Splitbft_core.Replica
module Sconfig = Splitbft_core.Config
module P = Splitbft_pbft.Replica
module Client = Splitbft_client.Client
module Kvs = Splitbft_app.Kvs

type fault_plan = {
  seed : int64;
  crash_host : int option;  (* at most f = 1 *)
  crash_delay_us : float;
  restart : bool;  (* bring the crashed host back up (crash-recovery path) *)
  byz_enclave : (int * Splitbft_types.Ids.compartment) option;
  drop_prob : float;
}

let plan_gen =
  QCheck.Gen.(
    map
      (fun (seed, crash, delay, restart, byz, drop) ->
        { seed = Int64.of_int seed;
          crash_host = (if crash < 4 then Some crash else None);
          crash_delay_us = float_of_int (10_000 + delay);
          restart = restart = 0;
          byz_enclave =
            (match byz with
            | 0 -> Some (0, Splitbft_types.Ids.Preparation)
            | 1 -> Some (1, Splitbft_types.Ids.Confirmation)
            | 2 -> Some (2, Splitbft_types.Ids.Execution)
            | _ -> None);
          drop_prob = float_of_int drop /. 1000.0 })
      (tup6 (1 -- 10_000) (0 -- 7) (0 -- 200_000) (0 -- 1) (0 -- 5) (0 -- 20)))

let plan_print p =
  Printf.sprintf "seed=%Ld crash=%s%s@%.0fus byz=%s drop=%.3f"
    p.seed
    (match p.crash_host with Some i -> string_of_int i | None -> "-")
    (if p.restart then "+restart" else "")
    p.crash_delay_us
    (match p.byz_enclave with
    | Some (i, c) -> Printf.sprintf "%d:%s" i (Splitbft_types.Ids.compartment_name c)
    | None -> "-")
    p.drop_prob

let plan_arbitrary = QCheck.make ~print:plan_print plan_gen

(* Returns true iff the run was safe: agreement among honest replicas and
   zero wrong client results.  Liveness is NOT asserted (drops and crashes
   may legitimately slow things down). *)
let splitbft_run (p : fault_plan) =
  let engine = Engine.create ~seed:p.seed () in
  let net =
    Network.create engine
      { Network.default_config with Network.drop_probability = p.drop_prob }
  in
  let n = 4 in
  let byz_of i =
    match p.byz_enclave with
    | Some (j, Splitbft_types.Ids.Preparation) when i = j ->
      (Splitbft_core.Preparation.Prep_equivocate, Splitbft_core.Confirmation.Conf_honest,
       Splitbft_core.Execution.Exec_honest)
    | Some (j, Splitbft_types.Ids.Confirmation) when i = j ->
      (Splitbft_core.Preparation.Prep_honest, Splitbft_core.Confirmation.Conf_promiscuous,
       Splitbft_core.Execution.Exec_honest)
    | Some (j, Splitbft_types.Ids.Execution) when i = j ->
      (Splitbft_core.Preparation.Prep_honest, Splitbft_core.Confirmation.Conf_honest,
       Splitbft_core.Execution.Exec_corrupt)
    | _ ->
      (Splitbft_core.Preparation.Prep_honest, Splitbft_core.Confirmation.Conf_honest,
       Splitbft_core.Execution.Exec_honest)
  in
  let replicas =
    List.init n (fun id ->
        let prep_byz, conf_byz, exec_byz = byz_of id in
        S.create ~prep_byz ~conf_byz ~exec_byz engine net
          { (Sconfig.default ~n ~id) with
            Sconfig.suspect_timeout_us = 150_000.0;
            viewchange_timeout_us = 300_000.0 }
          ~app:(fun () -> Kvs.create ()))
  in
  (match p.crash_host with
  | Some i when Some (i, Splitbft_types.Ids.Preparation) <> p.byz_enclave ->
    (* Keep the total fault load at one host + one enclave elsewhere. *)
    ignore
      (Engine.schedule engine ~delay:p.crash_delay_us ~label:"chaos-crash" (fun () ->
           S.crash_host (List.nth replicas i)));
    if p.restart then
      (* Crash-recovery: unseal, verify the counter binding, state-transfer
         back in.  Safety must hold whether or not recovery completes. *)
      ignore
        (Engine.schedule engine
           ~delay:(p.crash_delay_us +. 500_000.0)
           ~label:"chaos-restart"
           (fun () -> S.restart_host (List.nth replicas i)))
  | _ -> ());
  let wrong = ref 0 in
  let cl =
    Client.create engine net
      { (Client.default_config (Client.Splitbft { ready_quorum = 3 }) ~n ~id:0) with
        Client.retry_timeout_us = 200_000.0 }
  in
  Client.start cl ~on_ready:(fun () ->
      for i = 1 to 12 do
        Client.submit cl
          ~op:(Kvs.encode_op (Kvs.Put (Printf.sprintf "k%d" i, "v")))
          ~on_result:(fun ~latency_us:_ ~result ->
            if not (String.equal result Kvs.ok) then incr wrong)
      done);
  Engine.run ~until:1_600_000.0 engine;
  (* Honest = all replicas whose Execution enclave is honest. *)
  let honest =
    List.filteri
      (fun i _ ->
        match p.byz_enclave with
        | Some (j, Splitbft_types.Ids.Execution) -> i <> j
        | _ -> true)
      replicas
  in
  let tables =
    List.map
      (fun r ->
        let t = Hashtbl.create 64 in
        List.iter (fun (seq, d) -> Hashtbl.replace t seq d) (S.executed_log r);
        t)
      honest
  in
  let agreement =
    List.for_all
      (fun ta ->
        List.for_all
          (fun tb ->
            Hashtbl.fold
              (fun seq da acc ->
                acc
                &&
                match Hashtbl.find_opt tb seq with
                | Some db -> String.equal da db
                | None -> true)
              ta true)
          tables)
      tables
  in
  agreement && !wrong = 0

(* CI's chaos job raises this well beyond the default for a deeper sweep. *)
let qcheck_count =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 6)
  | None -> 6

let prop_splitbft_safe_under_bounded_faults =
  QCheck.Test.make ~name:"splitbft safe under any bounded fault schedule"
    ~count:qcheck_count plan_arbitrary splitbft_run

let pbft_run (p : fault_plan) =
  let engine = Engine.create ~seed:p.seed () in
  let net =
    Network.create engine
      { Network.default_config with Network.drop_probability = p.drop_prob }
  in
  let n = 4 in
  let replicas =
    List.init n (fun id ->
        P.create engine net
          { (P.default_config ~n ~id) with
            P.suspect_timeout_us = 150_000.0;
            viewchange_timeout_us = 300_000.0 }
          ~app:(Kvs.create ()))
  in
  (match p.crash_host with
  | Some i ->
    ignore
      (Engine.schedule engine ~delay:p.crash_delay_us ~label:"chaos-crash" (fun () ->
           P.crash (List.nth replicas i)));
    if p.restart then
      ignore
        (Engine.schedule engine
           ~delay:(p.crash_delay_us +. 500_000.0)
           ~label:"chaos-restart"
           (fun () -> P.restart (List.nth replicas i)))
  | None -> ());
  (* One byzantine replica (<= f), never the crashed one. *)
  let byz_id =
    match (p.byz_enclave, p.crash_host) with
    | Some (j, _), Some c when j = c -> None
    | Some (j, _), _ -> Some j
    | None, _ -> None
  in
  (match byz_id with
  | Some j -> P.set_byzantine (List.nth replicas j) P.Corrupt_execution
  | None -> ());
  let wrong = ref 0 in
  let cl =
    Client.create engine net
      { (Client.default_config Client.Pbft ~n ~id:0) with
        Client.retry_timeout_us = 200_000.0 }
  in
  Client.start cl ~on_ready:(fun () ->
      for i = 1 to 12 do
        Client.submit cl
          ~op:(Kvs.encode_op (Kvs.Put (Printf.sprintf "k%d" i, "v")))
          ~on_result:(fun ~latency_us:_ ~result ->
            if not (String.equal result Kvs.ok) then incr wrong)
      done);
  Engine.run ~until:1_600_000.0 engine;
  let honest =
    List.filteri
      (fun i _ -> Some i <> byz_id && (p.restart || Some i <> p.crash_host))
      replicas
  in
  let tables =
    List.map
      (fun r ->
        let t = Hashtbl.create 64 in
        List.iter (fun (seq, d) -> Hashtbl.replace t seq d) (P.executed_log r);
        t)
      honest
  in
  let agreement =
    List.for_all
      (fun ta ->
        List.for_all
          (fun tb ->
            Hashtbl.fold
              (fun seq da acc ->
                acc
                &&
                match Hashtbl.find_opt tb seq with
                | Some db -> String.equal da db
                | None -> true)
              ta true)
          tables)
      tables
  in
  agreement && !wrong = 0

let prop_pbft_safe_under_bounded_faults =
  QCheck.Test.make ~name:"pbft safe under any bounded fault schedule"
    ~count:qcheck_count plan_arbitrary pbft_run

let suites =
  [ ( "chaos",
      [ QCheck_alcotest.to_alcotest ~long:true prop_splitbft_safe_under_bounded_faults;
        QCheck_alcotest.to_alcotest ~long:true prop_pbft_safe_under_bounded_faults ] ) ]
