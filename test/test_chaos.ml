(* Randomized fault-schedule property tests: for arbitrary seeds and
   within-bound fault placements, the protocols must preserve agreement
   among honest replicas, keep ledgers prefix-consistent, never hand a
   client a wrong result, and (SplitBFT) never show the confidentiality
   canary to the untrusted world.  This is the property-based counterpart
   of the hand-written Table 1 scenarios, and the randomized cross-check
   of the model checker's exhaustive small-scope runs — both legs now
   evaluate the same invariant set through [Splitbft_mc.Chaos].

   Failing plans shrink (drop the byzantine enclave first, then the
   crash, then the drops) and are dumped as replayable artifacts under
   $CHAOS_ARTIFACT_DIR, consumable by `splitbft_cli replay`. *)

module Chaos = Splitbft_mc.Chaos
module Schedule = Splitbft_mc.Schedule
module Ids = Splitbft_types.Ids

let plan_gen =
  QCheck.Gen.(
    map
      (fun (seed, crash, delay, restart, byz, drop) ->
        { Chaos.seed = Int64.of_int seed;
          crash_host = (if crash < 4 then Some crash else None);
          crash_delay_us = float_of_int (10_000 + delay);
          restart = restart = 0;
          byz_enclave =
            (match byz with
            | 0 -> Some (0, Ids.Preparation)
            | 1 -> Some (1, Ids.Confirmation)
            | 2 -> Some (2, Ids.Execution)
            | _ -> None);
          drop_prob = float_of_int drop /. 1000.0 })
      (tup6 (1 -- 10_000) (0 -- 7) (0 -- 200_000) (0 -- 1) (0 -- 5) (0 -- 20)))

(* Shrink toward the fault-free plan, one fault at a time, so a reported
   failure carries only the faults it actually needs. *)
let plan_shrink (p : Chaos.plan) yield =
  if p.Chaos.byz_enclave <> None then yield { p with Chaos.byz_enclave = None };
  if p.Chaos.crash_host <> None then yield { p with Chaos.crash_host = None };
  if p.Chaos.drop_prob > 0.0 then yield { p with Chaos.drop_prob = 0.0 };
  if p.Chaos.restart then yield { p with Chaos.restart = false };
  if p.Chaos.crash_delay_us > 10_000.0 then yield { p with Chaos.crash_delay_us = 10_000.0 }

let plan_arbitrary = QCheck.make ~print:Chaos.describe_plan ~shrink:plan_shrink plan_gen

(* Every failing plan becomes a replayable artifact; QCheck shrinks
   before reporting, so the last dump for a property is the minimal one. *)
let dump_artifact ~protocol (p : Chaos.plan) detail =
  match Sys.getenv_opt "CHAOS_ARTIFACT_DIR" with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then ignore (Sys.command (Filename.quote_command "mkdir" [ "-p"; dir ]));
    let path =
      Filename.concat dir (Printf.sprintf "chaos-%s-seed%Ld.txt" protocol p.Chaos.seed)
    in
    (try
       Schedule.save ~path (Schedule.Chaos { protocol; plan = p; detail });
       Printf.eprintf "chaos: wrote failing plan to %s (replay with: splitbft_cli replay %s)\n%!"
         path path
     with Sys_error e -> Printf.eprintf "chaos: could not write artifact: %s\n%!" e)

let safe ~protocol run p =
  match run p with
  | None -> true
  | Some detail ->
    dump_artifact ~protocol p detail;
    QCheck.Test.fail_reportf "unsafe %s run: %s\n  plan: %s" protocol detail
      (Chaos.describe_plan p)

(* CI's chaos job raises this well beyond the default for a deeper sweep. *)
let qcheck_count =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 6)
  | None -> 6

let prop_splitbft_safe_under_bounded_faults =
  QCheck.Test.make ~name:"splitbft safe under any bounded fault schedule" ~count:qcheck_count
    plan_arbitrary
    (safe ~protocol:"splitbft" Chaos.run_splitbft)

let prop_pbft_safe_under_bounded_faults =
  QCheck.Test.make ~name:"pbft safe under any bounded fault schedule" ~count:qcheck_count
    plan_arbitrary
    (safe ~protocol:"pbft" Chaos.run_pbft)

let suites =
  [ ( "chaos",
      [ QCheck_alcotest.to_alcotest ~long:true prop_splitbft_safe_under_bounded_faults;
        QCheck_alcotest.to_alcotest ~long:true prop_pbft_safe_under_bounded_faults ] ) ]
