module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module Client = Splitbft_client.Client
module Message = Splitbft_types.Message
module Addr = Splitbft_types.Addr
module Keys = Splitbft_types.Keys
module Hmac = Splitbft_crypto.Hmac
module Kvs = Splitbft_app.Kvs

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* A scripted fake replica: answers requests according to [reply_fn]. *)
let fake_replica net ~id ~reply_fn =
  Network.register net (Addr.replica id) (fun ~src payload ->
      match Message.decode payload with
      | Ok (Message.Request r) -> (
        match reply_fn ~replica:id ~request:r with
        | Some result ->
          let rp =
            { Message.view = 0;
              timestamp = r.Message.timestamp;
              client = r.Message.client;
              sender = id;
              result;
              r_auth = "" }
          in
          let key =
            Keys.client_replica_key ~protocol:"pbft" ~client:r.Message.client ~replica:id
          in
          let rp = { rp with Message.r_auth = Hmac.mac ~key (Message.reply_auth_bytes rp) } in
          Network.send net ~src:(Addr.replica id) ~dst:src
            (Message.encode (Message.Reply rp))
        | None -> ())
      | Ok _ | Error _ -> ())

let setup ~reply_fn =
  let engine = Engine.create ~seed:77L () in
  let net = Network.create engine Network.default_config in
  for id = 0 to 3 do
    fake_replica net ~id ~reply_fn
  done;
  let client =
    Client.create engine net
      { (Client.default_config Client.Pbft ~n:4 ~id:0) with
        Client.retry_timeout_us = 100_000.0;
        (* exact retry timing matters in these tests *)
        retry_jitter = 0.0 }
  in
  (engine, net, client)

let test_completes_on_quorum () =
  let engine, _, client = setup ~reply_fn:(fun ~replica:_ ~request:_ -> Some "R") in
  let results = ref [] in
  Client.start client ~on_ready:(fun () ->
      Client.submit client ~op:"x" ~on_result:(fun ~latency_us:_ ~result ->
          results := result :: !results));
  Engine.run ~until:1_000_000.0 engine;
  Alcotest.(check (list string)) "one completion" [ "R" ] !results;
  checki "completed counter" 1 (Client.completed client);
  checki "nothing outstanding" 0 (Client.outstanding client)

let test_needs_matching_majority () =
  (* Replicas disagree 2 vs 2: with f+1 = 2 the first matching pair wins;
     make three agree to be deterministic and one disagree. *)
  let reply_fn ~replica ~request:_ = Some (if replica = 0 then "WRONG" else "GOOD") in
  let engine, _, client = setup ~reply_fn in
  let got = ref "" in
  Client.start client ~on_ready:(fun () ->
      Client.submit client ~op:"x" ~on_result:(fun ~latency_us:_ ~result -> got := result));
  Engine.run ~until:1_000_000.0 engine;
  Alcotest.(check string) "majority result accepted" "GOOD" !got

let test_single_vote_insufficient () =
  (* Only one replica answers: no quorum, no completion. *)
  let reply_fn ~replica ~request:_ = if replica = 2 then Some "R" else None in
  let engine, _, client = setup ~reply_fn in
  let done_ = ref 0 in
  Client.start client ~on_ready:(fun () ->
      Client.submit client ~op:"x" ~on_result:(fun ~latency_us:_ ~result:_ -> incr done_));
  Engine.run ~until:1_000_000.0 engine;
  checki "never completes on one vote" 0 !done_;
  checki "still outstanding" 1 (Client.outstanding client)

let test_bad_auth_rejected () =
  (* Replies carry an invalid HMAC: the client must ignore them. *)
  let engine = Engine.create ~seed:78L () in
  let net = Network.create engine Network.default_config in
  for id = 0 to 3 do
    Network.register net (Addr.replica id) (fun ~src payload ->
        match Message.decode payload with
        | Ok (Message.Request r) ->
          let rp =
            { Message.view = 0;
              timestamp = r.Message.timestamp;
              client = r.Message.client;
              sender = id;
              result = "FORGED";
              r_auth = String.make 32 'x' }
          in
          Network.send net ~src:(Addr.replica id) ~dst:src
            (Message.encode (Message.Reply rp))
        | Ok _ | Error _ -> ())
  done;
  let client = Client.create engine net (Client.default_config Client.Pbft ~n:4 ~id:0) in
  let done_ = ref 0 in
  Client.start client ~on_ready:(fun () ->
      Client.submit client ~op:"x" ~on_result:(fun ~latency_us:_ ~result:_ -> incr done_));
  Engine.run ~until:500_000.0 engine;
  checki "forged replies rejected" 0 !done_

let test_duplicate_votes_ignored () =
  (* Each replica answers twice; only distinct senders may count. *)
  let engine = Engine.create ~seed:79L () in
  let net = Network.create engine Network.default_config in
  (* Only replica 0 exists, but it answers four times. *)
  Network.register net (Addr.replica 0) (fun ~src payload ->
      match Message.decode payload with
      | Ok (Message.Request r) ->
        for _ = 1 to 4 do
          let rp =
            { Message.view = 0;
              timestamp = r.Message.timestamp;
              client = r.Message.client;
              sender = 0;
              result = "R";
              r_auth = "" }
          in
          let key = Keys.client_replica_key ~protocol:"pbft" ~client:r.Message.client ~replica:0 in
          let rp = { rp with Message.r_auth = Hmac.mac ~key (Message.reply_auth_bytes rp) } in
          Network.send net ~src:(Addr.replica 0) ~dst:src (Message.encode (Message.Reply rp))
        done
      | Ok _ | Error _ -> ())
  ;
  let client = Client.create engine net (Client.default_config Client.Pbft ~n:4 ~id:0) in
  let done_ = ref 0 in
  Client.start client ~on_ready:(fun () ->
      Client.submit client ~op:"x" ~on_result:(fun ~latency_us:_ ~result:_ -> incr done_));
  Engine.run ~until:500_000.0 engine;
  checki "same sender cannot vote twice" 0 !done_

let test_retransmission () =
  (* Replicas only answer from the second attempt on. *)
  let attempts = Hashtbl.create 8 in
  let reply_fn ~replica ~request:(r : Message.request) =
    let key = (replica, r.Message.timestamp) in
    let n = 1 + Option.value ~default:0 (Hashtbl.find_opt attempts key) in
    Hashtbl.replace attempts key n;
    if n >= 2 then Some "R" else None
  in
  let engine, _, client = setup ~reply_fn in
  let done_at = ref nan in
  Client.start client ~on_ready:(fun () ->
      Client.submit client ~op:"x" ~on_result:(fun ~latency_us ~result:_ ->
          done_at := latency_us));
  Engine.run ~until:2_000_000.0 engine;
  checkb "completed after retry" true (not (Float.is_nan !done_at));
  checkb "latency includes the retry timeout" true (!done_at >= 100_000.0)

let test_backoff_grows_and_caps () =
  (* Nobody ever answers; the resend schedule must back off geometrically
     from the initial timeout up to the cap, then hold there. *)
  let engine = Engine.create ~seed:81L () in
  let net = Network.create engine Network.default_config in
  let arrivals = ref [] in
  Network.register net (Addr.replica 0) (fun ~src:_ payload ->
      match Message.decode payload with
      | Ok (Message.Request _) -> arrivals := Engine.now engine :: !arrivals
      | Ok _ | Error _ -> ());
  let client =
    Client.create engine net
      { (Client.default_config Client.Pbft ~n:4 ~id:0) with
        Client.retry_timeout_us = 50_000.0;
        retry_backoff = 2.0;
        retry_cap_us = 200_000.0;
        retry_jitter = 0.0 }
  in
  Client.start client ~on_ready:(fun () ->
      Client.submit client ~op:"x" ~on_result:(fun ~latency_us:_ ~result:_ -> ()));
  Engine.run ~until:1_200_000.0 engine;
  let ts = List.rev !arrivals in
  let rec gaps = function a :: (b :: _ as rest) -> (b -. a) :: gaps rest | _ -> [] in
  let g = Array.of_list (gaps ts) in
  checkb "enough resends observed" true (Array.length g >= 5);
  let near want got = Float.abs (got -. want) < 5_000.0 in
  checkb "first gap = initial timeout" true (near 50_000.0 g.(0));
  checkb "second gap doubled" true (near 100_000.0 g.(1));
  checkb "third gap doubled again" true (near 200_000.0 g.(2));
  checkb "fourth gap held at cap" true (near 200_000.0 g.(3));
  checkb "fifth gap held at cap" true (near 200_000.0 g.(4))

let test_backoff_jitter_deterministic_and_bounded () =
  (* With jitter on, each armed delay moves by at most ±the jitter
     fraction, and the same seed reproduces the same schedule. *)
  let run () =
    let engine = Engine.create ~seed:82L () in
    let net = Network.create engine Network.default_config in
    let arrivals = ref [] in
    Network.register net (Addr.replica 0) (fun ~src:_ payload ->
        match Message.decode payload with
        | Ok (Message.Request _) -> arrivals := Engine.now engine :: !arrivals
        | Ok _ | Error _ -> ());
    let client =
      Client.create engine net
        { (Client.default_config Client.Pbft ~n:4 ~id:0) with
          Client.retry_timeout_us = 50_000.0;
          retry_backoff = 2.0;
          retry_cap_us = 200_000.0;
          retry_jitter = 0.1 }
    in
    Client.start client ~on_ready:(fun () ->
        Client.submit client ~op:"x" ~on_result:(fun ~latency_us:_ ~result:_ -> ()));
    Engine.run ~until:800_000.0 engine;
    List.rev !arrivals
  in
  let a = run () and b = run () in
  Alcotest.(check (list (float 1e-6))) "same seed, same schedule" a b;
  let rec gaps = function x :: (y :: _ as rest) -> (y -. x) :: gaps rest | _ -> [] in
  let nominal = [ 50_000.0; 100_000.0; 200_000.0; 200_000.0 ] in
  List.iteri
    (fun i g ->
      if i < List.length nominal then begin
        let base = List.nth nominal i in
        (* ±10% jitter plus a little network slack *)
        checkb
          (Printf.sprintf "gap %d within jitter bound" i)
          true
          (g >= (base *. 0.9) -. 2_000.0 && g <= (base *. 1.1) +. 2_000.0)
      end)
    (gaps a)

let test_window_respected () =
  let inflight_max = ref 0 in
  let engine = Engine.create ~seed:80L () in
  let net = Network.create engine Network.default_config in
  let pending : (int * Message.request) Queue.t = Queue.create () in
  for id = 0 to 3 do
    Network.register net (Addr.replica id) (fun ~src:_ payload ->
        match Message.decode payload with
        | Ok (Message.Request r) -> Queue.push (id, r) pending
        | Ok _ | Error _ -> ())
  done;
  let client =
    Client.create engine net
      { (Client.default_config Client.Pbft ~n:4 ~id:0) with Client.window = 3 }
  in
  Client.start client ~on_ready:(fun () ->
      for i = 1 to 10 do
        Client.submit client ~op:(string_of_int i) ~on_result:(fun ~latency_us:_ ~result:_ -> ())
      done);
  (* Drain replies step by step, watching the outstanding count. *)
  let rec pump () =
    inflight_max := max !inflight_max (Client.outstanding client);
    if Queue.is_empty pending then ()
    else begin
      let id, r = Queue.pop pending in
      let rp =
        { Message.view = 0;
          timestamp = r.Message.timestamp;
          client = r.Message.client;
          sender = id;
          result = "R";
          r_auth = "" }
      in
      let key = Keys.client_replica_key ~protocol:"pbft" ~client:r.Message.client ~replica:id in
      let rp = { rp with Message.r_auth = Hmac.mac ~key (Message.reply_auth_bytes rp) } in
      Network.send net ~src:(Addr.replica id) ~dst:(Addr.client 0)
        (Message.encode (Message.Reply rp));
      ignore (Engine.schedule engine ~delay:100.0 ~label:"pump" pump)
    end
  in
  ignore (Engine.schedule engine ~delay:1_000.0 ~label:"pump" pump);
  Engine.run ~until:2_000_000.0 engine;
  checkb "outstanding never exceeds the window" true (!inflight_max <= 3);
  checki "all eventually complete" 10 (Client.completed client)

let test_splitbft_handshake_requires_genuine_quotes () =
  (* A network of fake replicas that merely echo Session_init with junk
     quotes: the client must never become ready. *)
  let engine = Engine.create ~seed:81L () in
  let net = Network.create engine Network.default_config in
  for id = 0 to 3 do
    Network.register net (Addr.replica id) (fun ~src payload ->
        match Message.decode payload with
        | Ok (Message.Session_init _) ->
          let sq =
            { Message.sq_replica = id;
              sq_quote = "not-a-quote";
              sq_box_public = String.make 32 'b';
              sq_nonce = String.make 16 'n';
              sq_sig = String.make 32 's' }
          in
          Network.send net ~src:(Addr.replica id) ~dst:src
            (Message.encode (Message.Session_quote sq))
        | Ok _ | Error _ -> ())
  done;
  let client =
    Client.create engine net
      (Client.default_config (Client.Splitbft { ready_quorum = 1 }) ~n:4 ~id:0)
  in
  let ready = ref false in
  Client.start client ~on_ready:(fun () -> ready := true);
  Engine.run ~until:1_000_000.0 engine;
  checkb "never ready against fake enclaves" false !ready

let suites =
  [ ( "client",
      [ Alcotest.test_case "completes on quorum" `Quick test_completes_on_quorum;
        Alcotest.test_case "matching majority" `Quick test_needs_matching_majority;
        Alcotest.test_case "one vote insufficient" `Quick test_single_vote_insufficient;
        Alcotest.test_case "bad auth rejected" `Quick test_bad_auth_rejected;
        Alcotest.test_case "duplicate votes ignored" `Quick test_duplicate_votes_ignored;
        Alcotest.test_case "retransmission" `Quick test_retransmission;
        Alcotest.test_case "backoff grows and caps" `Quick test_backoff_grows_and_caps;
        Alcotest.test_case "backoff jitter bounded" `Quick
          test_backoff_jitter_deterministic_and_bounded;
        Alcotest.test_case "window respected" `Quick test_window_respected;
        Alcotest.test_case "fake quotes rejected" `Quick test_splitbft_handshake_requires_genuine_quotes ] ) ]
