(* Differential property test over the shared consensus core.

   The monolithic PBFT baseline and the SplitBFT compartment pipeline now
   both sit on [lib/consensus]. This suite drives both through identical
   seeded scenarios — a single client with window 1, an order-sensitive KVS
   workload (interleaved overwrites + reads), a primary crash forcing a
   view change, and checkpoint rounds every 8 sequence numbers — and checks
   that commit order, every reply, and the final application digest agree
   across the two protocol stacks, for several RNG seeds. *)

module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module Pbft = Splitbft_pbft.Replica
module Split = Splitbft_core.Replica
module Config = Splitbft_core.Config
module Execution = Splitbft_core.Execution
module Client = Splitbft_client.Client
module Kvs = Splitbft_app.Kvs

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* Overwrites cycle over three keys and reads observe earlier writes, so
   the final digest and the reply stream are both order-sensitive: any
   divergence in commit order between the two stacks shows up either in a
   GET reply or in the final state digest. *)
let workload n =
  List.init n (fun i ->
      if i mod 5 = 4 then Kvs.Get ("k" ^ string_of_int (i mod 3))
      else Kvs.Put ("k" ^ string_of_int (i mod 3), "v" ^ string_of_int i))

type trace = {
  completed : int;
  results : string array;  (** reply per op, indexed by submission order *)
  digests : string list;  (** final app digest per surviving replica *)
  views : int list;
  stables : int list;  (** low watermark / last stable per survivor *)
  execs : int list;  (** executed-op count per survivor *)
}

(* After the SplitBFT client handshake settles, but well before a
   window-1 client can push the whole workload through. *)
let crash_at = 10_000.0
let horizon = 15_000_000.0

let drive ?(n = 4) engine net mode ~ops =
  let ops_l = workload ops in
  let results = Array.make ops "<none>" in
  let completed = ref 0 in
  let cl =
    Client.create engine net
      { (Client.default_config mode ~n ~id:0) with
        Client.window = 1;
        retry_timeout_us = 300_000.0 }
  in
  Client.start cl ~on_ready:(fun () ->
      List.iteri
        (fun i op ->
          Client.submit cl ~op:(Kvs.encode_op op)
            ~on_result:(fun ~latency_us:_ ~result ->
              incr completed;
              results.(i) <- result))
        ops_l);
  Engine.run ~until:horizon engine;
  (!completed, results)

let run_pbft ~seed ~ops =
  let engine = Engine.create ~seed () in
  let net = Network.create engine Network.default_config in
  let replicas =
    List.init 4 (fun i ->
        Pbft.create engine net
          { (Pbft.default_config ~n:4 ~id:i) with
            Pbft.batch_size = 1;
            checkpoint_interval = 8;
            suspect_timeout_us = 200_000.0;
            viewchange_timeout_us = 400_000.0 }
          ~app:(Kvs.create ()))
  in
  ignore
    (Engine.schedule engine ~delay:crash_at ~label:"crash-primary" (fun () ->
         Pbft.crash (List.nth replicas 0)));
  let completed, results = drive engine net Client.Pbft ~ops in
  let survivors = List.filteri (fun i _ -> i > 0) replicas in
  {
    completed;
    results;
    digests = List.map Pbft.app_digest survivors;
    views = List.map Pbft.view survivors;
    stables = List.map Pbft.low_watermark survivors;
    execs = List.map Pbft.executed_count survivors;
  }

(* [lanes]/[workers] exercise the pipelined-consensus and worker-pool
   paths; at the defaults the run is the historical serial pipeline.
   [net_cfg] lets the split stack run over lossy links (replies and
   digests must still match the PBFT trace taken on the default network).
   [restart] brings the crashed primary back mid-run, so recovery must
   re-derive every lane cursor consistently. *)
let run_split ?(lanes = 1) ?(workers = 1) ?(net_cfg = Network.default_config)
    ?(restart = false) ~seed ~ops () =
  let engine = Engine.create ~seed () in
  let net = Network.create engine net_cfg in
  let replicas =
    List.init 4 (fun i ->
        Split.create engine net
          { (Config.default ~n:4 ~id:i) with
            Config.checkpoint_interval = 8;
            suspect_timeout_us = 200_000.0;
            viewchange_timeout_us = 400_000.0;
            lanes;
            exec_workers = workers }
          ~app:(fun () -> Kvs.create ()))
  in
  ignore
    (Engine.schedule engine ~delay:crash_at ~label:"crash-primary-host" (fun () ->
         Split.crash_host (List.nth replicas 0)));
  if restart then
    ignore
      (Engine.schedule engine ~delay:(crash_at +. 2_000_000.0)
         ~label:"restart-primary-host" (fun () ->
           Split.restart_host (List.nth replicas 0)));
  let completed, results =
    drive engine net (Client.Splitbft { ready_quorum = 4 }) ~ops
  in
  if restart then begin
    let r0 = List.nth replicas 0 in
    checkb "restarted primary recovered" true (Split.recovered r0);
    checkb "restarted primary re-executed" true (Split.executed_count r0 > 0)
  end;
  let survivors = List.filteri (fun i _ -> i > 0) replicas in
  {
    completed;
    results;
    digests = List.map Split.app_digest survivors;
    views = List.map Split.view survivors;
    stables =
      List.map (fun r -> (Split.exec_probe r).Execution.last_stable ()) survivors;
    execs = List.map Split.executed_count survivors;
  }

(* [allow_laggards] relaxes the all-survivors digest check to the
   survivors that executed the full prefix.  Under lossy links with the
   primary crashed (f = 1 of n = 4), checkpoints need every survivor, so
   one survivor missing a tail Commit to message loss holds a shorter —
   but prefix-consistent — state forever once the client stops driving
   traffic; there is no commit anti-entropy.  At least two survivors
   must still hold the complete, identical state. *)
let check_internal_agreement ?(allow_laggards = false) label t =
  let mx = List.fold_left max 0 t.execs in
  let complete =
    List.filteri (fun i _ -> List.nth t.execs i = mx) t.digests
  in
  if allow_laggards then
    checkb
      (label ^ ": at least two survivors hold the full state")
      true
      (List.length complete >= 2)
  else
    checki (label ^ ": all survivors executed the full prefix")
      (List.length t.digests) (List.length complete);
  (match complete with
  | [] -> Alcotest.fail (label ^ ": no survivors")
  | d :: rest ->
      List.iter (fun d' -> checks (label ^ ": replicas agree on state") d d') rest);
  List.iter
    (fun v -> checkb (label ^ ": view change happened") true (v >= 1))
    t.views;
  List.iter
    (fun s -> checkb (label ^ ": checkpoint round stabilised") true (s >= 8))
    t.stables

(* Digest of a survivor that executed the full prefix. *)
let complete_digest t =
  let mx = List.fold_left max 0 t.execs in
  let rec pick ds es =
    match (ds, es) with
    | d :: _, e :: _ when e = mx -> d
    | _ :: ds, _ :: es -> pick ds es
    | _ -> failwith "no survivors"
  in
  pick t.digests t.execs

let check_seed ?lanes ?workers ?net_cfg ?restart ?allow_laggards seed =
  let ops = 60 in
  let p = run_pbft ~seed ~ops in
  let s = run_split ?lanes ?workers ?net_cfg ?restart ~seed ~ops () in
  let tag fmt = Printf.sprintf fmt (Int64.to_string seed) in
  checki (tag "seed %s: pbft all ops complete") ops p.completed;
  checki (tag "seed %s: split all ops complete") ops s.completed;
  check_internal_agreement ?allow_laggards (tag "seed %s: pbft") p;
  check_internal_agreement ?allow_laggards (tag "seed %s: split") s;
  Array.iteri
    (fun i rp ->
      checks (Printf.sprintf "seed %s: reply %d identical" (Int64.to_string seed) i)
        rp s.results.(i))
    p.results;
  checks (tag "seed %s: final state digest identical")
    (complete_digest p) (complete_digest s)

let test_differential_seed_11 () = check_seed 11L
let test_differential_seed_23 () = check_seed 23L
let test_differential_seed_47 () = check_seed 47L

(* The same differential property with the pipeline actually pipelined:
   multiple consensus lanes in flight and a parallel Execution worker
   pool must not change a single reply byte or the final digest, under a
   view change (every run crashes the primary), crash-recovery, and lossy
   links. *)
let lossy = { Network.default_config with Network.drop_probability = 0.02 }

let test_lanes_view_change () = check_seed ~lanes:4 ~workers:4 11L
let test_lanes_recovery () = check_seed ~lanes:2 ~workers:3 ~restart:true 23L
let test_lanes_lossy () =
  check_seed ~lanes:4 ~workers:2 ~net_cfg:lossy ~allow_laggards:true 47L

(* ----- functor-rewiring safety net -----

   The same closed-loop run driven twice: once through the
   Cluster/PROTOCOL functor harness and once by constructing the replica
   stack directly, mirroring exactly the configuration the protocol
   instance derives in [config_of_shared].  Every reply byte, the
   executed-op counts and the final application digests must be identical
   — for each built-in protocol, including SplitBFT with the pipeline
   actually pipelined (lanes > 1, workers > 1).  Any behavioural drift
   introduced by the functor layer shows up as a byte diff here. *)

module Cluster = Splitbft_harness.Cluster
module Minbft = Splitbft_minbft.Replica
module Proto = Splitbft_proto

type flat = {
  f_completed : int;
  f_results : string array;
  f_digests : string list;  (** final app digest per survivor, in id order *)
  f_execs : int list;
}

(* The shared-knob overrides every run in this suite uses (checkpoint
   rounds every 8 seqnos, aggressive suspicion so the post-crash view
   change happens early). *)
let ckpt_interval = 8
let suspect_us = 200_000.0

let flat_of_harness protocol ~seed ~ops =
  let params =
    { (Cluster.default_params protocol) with
      Cluster.checkpoint_interval = ckpt_interval;
      suspect_timeout_us = suspect_us;
      seed }
  in
  let cluster = Cluster.create params in
  let engine = Cluster.engine cluster in
  let net = Cluster.network cluster in
  ignore
    (Engine.schedule engine ~delay:crash_at ~label:"crash-primary-host" (fun () ->
         Cluster.crash_host cluster 0));
  let n = params.Cluster.n in
  let mode = Cluster.Proto.client_protocol protocol ~n ~ready_quorum:None in
  let completed, results = drive ~n engine net mode ~ops in
  let survivors = List.filteri (fun i _ -> i > 0) (Cluster.nodes cluster) in
  { f_completed = completed;
    f_results = results;
    f_digests = List.map Cluster.app_digest_of survivors;
    f_execs = List.map Cluster.executed_count_of survivors }

let flat_of_direct_pbft ~seed ~ops =
  let engine = Engine.create ~seed () in
  let net = Network.create engine Network.default_config in
  let replicas =
    List.init 4 (fun i ->
        Pbft.create engine net
          { (Pbft.default_config ~n:4 ~id:i) with
            Pbft.batch_size = 1;
            batch_timeout_us = 10_000.0;
            checkpoint_interval = ckpt_interval;
            suspect_timeout_us = suspect_us }
          ~app:(Kvs.create ()))
  in
  ignore
    (Engine.schedule engine ~delay:crash_at ~label:"crash-primary-host" (fun () ->
         Pbft.crash (List.nth replicas 0)));
  let completed, results = drive engine net Client.Pbft ~ops in
  let survivors = List.filteri (fun i _ -> i > 0) replicas in
  { f_completed = completed;
    f_results = results;
    f_digests = List.map Pbft.app_digest survivors;
    f_execs = List.map Pbft.executed_count survivors }

let flat_of_direct_minbft ~seed ~ops =
  let engine = Engine.create ~seed () in
  let net = Network.create engine Network.default_config in
  let replicas =
    List.init 3 (fun i ->
        Minbft.create engine net
          { (Minbft.default_config ~n:3 ~id:i) with
            Minbft.batch_size = 1;
            batch_timeout_us = 10_000.0;
            checkpoint_interval = ckpt_interval;
            suspect_timeout_us = suspect_us }
          ~app:(Kvs.create ()))
  in
  ignore
    (Engine.schedule engine ~delay:crash_at ~label:"crash-primary-host" (fun () ->
         Minbft.crash (List.nth replicas 0)));
  let completed, results = drive ~n:3 engine net Client.Minbft ~ops in
  let survivors = List.filteri (fun i _ -> i > 0) replicas in
  { f_completed = completed;
    f_results = results;
    f_digests = List.map Minbft.app_digest survivors;
    f_execs = List.map Minbft.executed_count survivors }

let flat_of_direct_split ?(lanes = 1) ?(workers = 1) ~seed ~ops () =
  let engine = Engine.create ~seed () in
  let net = Network.create engine Network.default_config in
  let replicas =
    List.init 4 (fun i ->
        Split.create engine net
          { (Config.default ~n:4 ~id:i) with
            Config.batch_size = 1;
            batch_timeout_us = 10_000.0;
            checkpoint_interval = ckpt_interval;
            suspect_timeout_us = suspect_us;
            lanes;
            exec_workers = workers }
          ~app:(fun () -> Kvs.create ()))
  in
  ignore
    (Engine.schedule engine ~delay:crash_at ~label:"crash-primary-host" (fun () ->
         Split.crash_host (List.nth replicas 0)));
  let completed, results =
    drive engine net (Client.Splitbft { ready_quorum = 4 }) ~ops
  in
  let survivors = List.filteri (fun i _ -> i > 0) replicas in
  { f_completed = completed;
    f_results = results;
    f_digests = List.map Split.app_digest survivors;
    f_execs = List.map Split.executed_count survivors }

let check_functor_identical name ~ops direct harness =
  checki (name ^ ": all ops complete") ops direct.f_completed;
  checki (name ^ ": completed identical") direct.f_completed harness.f_completed;
  Array.iteri
    (fun i rd ->
      checks (Printf.sprintf "%s: reply %d identical" name i) rd harness.f_results.(i))
    direct.f_results;
  List.iter2
    (fun dd hd -> checks (name ^ ": survivor digest identical") dd hd)
    direct.f_digests harness.f_digests;
  List.iter2
    (fun de he -> checki (name ^ ": survivor exec count identical") de he)
    direct.f_execs harness.f_execs

let test_functor_pbft () =
  let ops = 60 and seed = 11L in
  check_functor_identical "pbft" ~ops
    (flat_of_direct_pbft ~seed ~ops)
    (flat_of_harness Proto.Proto_pbft.protocol ~seed ~ops)

let test_functor_minbft () =
  let ops = 60 and seed = 23L in
  check_functor_identical "minbft" ~ops
    (flat_of_direct_minbft ~seed ~ops)
    (flat_of_harness Proto.Proto_minbft.protocol ~seed ~ops)

let test_functor_splitbft () =
  let ops = 60 and seed = 11L in
  check_functor_identical "splitbft" ~ops
    (flat_of_direct_split ~seed ~ops ())
    (flat_of_harness Proto.Proto_splitbft.protocol ~seed ~ops)

let test_functor_splitbft_lanes () =
  let ops = 60 and seed = 47L in
  check_functor_identical "splitbft l4w4" ~ops
    (flat_of_direct_split ~lanes:4 ~workers:4 ~seed ~ops ())
    (flat_of_harness (Proto.Proto_splitbft.make ~lanes:4 ~exec_workers:4 ()) ~seed ~ops)

let suites =
  [ ( "consensus-differential",
      [
        Alcotest.test_case "pbft vs split, seed 11" `Slow test_differential_seed_11;
        Alcotest.test_case "pbft vs split, seed 23" `Slow test_differential_seed_23;
        Alcotest.test_case "pbft vs split, seed 47" `Slow test_differential_seed_47;
        Alcotest.test_case "lanes=4 workers=4, view change" `Slow
          test_lanes_view_change;
        Alcotest.test_case "lanes=2 workers=3, crash-recovery" `Slow
          test_lanes_recovery;
        Alcotest.test_case "lanes=4 workers=2, lossy links" `Slow test_lanes_lossy;
        Alcotest.test_case "functor vs direct: pbft" `Slow test_functor_pbft;
        Alcotest.test_case "functor vs direct: minbft" `Slow test_functor_minbft;
        Alcotest.test_case "functor vs direct: splitbft" `Slow test_functor_splitbft;
        Alcotest.test_case "functor vs direct: splitbft l4w4" `Slow
          test_functor_splitbft_lanes;
      ] ) ]
