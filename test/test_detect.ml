(* Detection coverage matrix and zero-false-positive sweep for the
   online anomaly detector (Detector).

   Coverage: every byzantine policy in the model checker's adversary
   vocabulary ([Splitbft_mc.Adversary]), deployed on a live cluster
   through the same [byz_for]/[env_fault_for] mapping the checker uses,
   must fire its corresponding detection rule against the compromised
   replica — plus an environment-starvation row for the executed-prefix
   lag rule.  [reorder-outputs] is the documented exclusion: a
   reordering environment is indistinguishable from tolerated network
   asynchrony, so its row asserts containment (progress, zero alerts)
   instead of an alert.

   Zero false positives: every Table 1 scenario runs under the detector;
   rows whose fault load is tolerated crashes, recoveries, rollbacks or
   delays must raise NO alert at all, and byzantine rows may only raise
   rules from their per-row allowance.  The allowance is rule-name-only
   for beyond-the-bound rows: once the fault exceeds what the protocol
   masks, accusations can legitimately land on honest replicas (e.g.
   f+1 corrupt Executions outvote the honest results, so the honest
   minority looks divergent). *)

module H = Splitbft_harness
module Mc = Splitbft_mc
module Obs = Splitbft_obs
module Engine = Splitbft_sim.Engine
module S = Splitbft_core.Replica
module Broker = Splitbft_core.Broker
module Ids = Splitbft_types.Ids
module Proto_splitbft = Splitbft_proto.Proto_splitbft

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let splitbft_node cluster i =
  match Proto_splitbft.replica_of (H.Cluster.node cluster i) with
  | Some r -> r
  | None -> assert false

(* ----- coverage matrix ----- *)

type row = {
  policy : string;  (* adversary spec, or "starve-execution@R" for the env row *)
  required : (string * int) list;  (* (rule, accused replica; -1 = cluster-wide) *)
  allowed : string list;  (* complete allowance; [required]'s rules are implied *)
  ckpt : int;
  clients : int;
  duration_us : float;
  suspect_us : float;
  ready_quorum : int option;
      (* faults that swallow a replica's session ack (starved Execution,
         dropped outputs) would otherwise leave every client stuck in
         setup: accept n-1 acks there *)
  crash_primary_at : float option;
}

let row ?(allowed = []) ?(ckpt = 64) ?(clients = 10) ?(duration_us = 1_000_000.0)
    ?(suspect_us = 250_000.0) ?ready_quorum ?crash_primary_at policy required =
  { policy; required; allowed; ckpt; clients; duration_us; suspect_us; ready_quorum;
    crash_primary_at }

(* Placement notes: [equivocate] and [corrupt-digest] sit at replica 0
   because only the view's primary proposes — a backup byzantine
   Preparation never gets to equivocate.  [stale-proof] needs a
   checkpoint certificate to exist (aggressive interval) and a view
   change afterwards (primary crash) before the stale ViewChange is
   observable.  [drop-outputs] sits at the primary so dropped proposals
   force client retransmissions. *)
let matrix =
  [ row "equivocate@0" [ ("equivocation", 0) ] ~allowed:[ "duplicate-flood"; "premature-commit" ];
    row "corrupt-digest@0"
      [ ("digest-mismatch", 0) ]
      ~allowed:[ "duplicate-flood"; "retx-storm"; "quorum-stall"; "prefix-lag" ];
    row "promiscuous-commit@1"
      [ ("premature-commit", 1) ]
      ~allowed:[ "duplicate-flood" ];
    row "stale-proof@1"
      [ ("stale-proof", 1) ]
      ~ckpt:8 ~duration_us:1_500_000.0 ~crash_primary_at:700_000.0
      ~allowed:[ "duplicate-flood"; "retx-storm" ];
    row "corrupt-result@1" [ ("vote-divergence", 1) ] ~ckpt:8 ~allowed:[ "checkpoint-mismatch" ];
    row "leak-plaintext@1" [ ("confidentiality-leak", 1) ];
    row "lie-checkpoint@1" [ ("checkpoint-mismatch", 1) ] ~ckpt:8;
    (* the primary swallowing proposals only provokes retransmissions if
       the stall outlives the clients' 400 ms retry timeout, so suspicion
       (and with it the rescuing view change) is slowed down *)
    (* checkpoint-mismatch is allowed here because it also accuses the
       compromised host: the drop-induced commit backlog makes replica
       0's checkpoint job observe a state ahead of the checkpoint seqno,
       so its digest conflicts with the quorum's *)
    row "drop-outputs:2@0"
      [ ("retx-storm", 0) ]
      ~duration_us:2_000_000.0 ~suspect_us:700_000.0 ~ready_quorum:3
      ~allowed:[ "duplicate-flood"; "quorum-stall"; "prefix-lag"; "checkpoint-mismatch" ];
    row "duplicate-outputs@1" [ ("duplicate-flood", 1) ];
    (* documented exclusion: must stay silent AND live *)
    row "reorder-outputs@1" [];
    (* environment starvation of one Execution: the replica keeps voting
       but stops executing, so its prefix trails the cluster *)
    row "starve-execution@1" [ ("prefix-lag", 1) ] ~duration_us:1_500_000.0 ~ready_quorum:3 ]

let run_row r =
  let env_starve =
    match String.index_opt r.policy '@' with
    | Some i when String.length r.policy > 6 && String.sub r.policy 0 6 = "starve" ->
      Some (int_of_string (String.sub r.policy (i + 1) (String.length r.policy - i - 1)))
    | _ -> None
  in
  let advs =
    match env_starve with
    | Some _ -> []
    | None -> [ Result.get_ok (Mc.Adversary.of_string r.policy) ]
  in
  let byz i =
    let prep, conf, exec = Mc.Adversary.byz_for advs i in
    { Proto_splitbft.prep; conf; exec }
  in
  let params =
    { (H.Cluster.default_params (Proto_splitbft.make ~byz ())) with
      H.Cluster.seed = 11L;
      suspect_timeout_us = r.suspect_us;
      checkpoint_interval = r.ckpt }
  in
  let flight = Obs.Flight.create ~capacity:4096 () in
  let cluster = H.Cluster.create ~flight params in
  let det = H.Detector.attach cluster in
  List.iteri
    (fun i _ ->
      match Mc.Adversary.env_fault_for advs i with
      | Some fault -> S.set_env_fault (splitbft_node cluster i) fault
      | None -> ())
    (H.Cluster.nodes cluster);
  (match env_starve with
  | Some i -> S.set_env_fault (splitbft_node cluster i) (Broker.Env_starve Ids.Execution)
  | None -> ());
  (match r.crash_primary_at with
  | Some delay ->
    ignore
      (Engine.schedule (H.Cluster.engine cluster) ~delay ~label:"test:crash" (fun () ->
           H.Cluster.crash_host cluster 0))
  | None -> ());
  let spec =
    { H.Workload.default_spec with
      H.Workload.clients = r.clients;
      warmup_us = 0.0;
      duration_us = r.duration_us;
      ready_quorum = r.ready_quorum }
  in
  let result = H.Workload.run cluster spec in
  (det, result)

let check_row r =
  let det, result = run_row r in
  let alerts = H.Detector.alerts det in
  let allowed = r.allowed @ List.map fst r.required in
  List.iter
    (fun (rule, replica) ->
      let fired =
        if replica < 0 then H.Detector.fired det
        else H.Detector.fired_at det ~replica
      in
      checkb
        (Printf.sprintf "%s: %s fired at %d (got: %s)" r.policy rule replica
           (String.concat ", " (List.map H.Detector.describe alerts)))
        true (List.mem rule fired))
    r.required;
  List.iter
    (fun (a : H.Detector.alert) ->
      checkb
        (Printf.sprintf "%s: %s within the allowance" r.policy (H.Detector.describe a))
        true
        (List.mem a.H.Detector.rule allowed))
    alerts;
  if r.required = [] then begin
    (* exclusion row: containment means silence AND progress *)
    checki (r.policy ^ ": no alerts") 0 (H.Detector.alert_count det);
    checkb (r.policy ^ ": still live") true (result.H.Workload.completed_total > 50)
  end

let coverage_cases =
  List.map
    (fun r ->
      Alcotest.test_case (Printf.sprintf "coverage: %s" r.policy) `Slow (fun () ->
          check_row r))
    matrix

(* Every rule in the catalog is exercised by some matrix row or sweep
   requirement below — a rule nobody can fire is dead weight. *)
let test_catalog_covered () =
  let covered =
    List.concat_map (fun r -> List.map fst r.required) matrix
    @ [ "disagreement"; "quorum-stall" (* required by sweep rows below *);
        "follower-straggler" (* fired by the storage suite's straggler test *) ]
  in
  List.iter
    (fun rule -> checkb (rule ^ " exercised") true (List.mem rule covered))
    H.Detector.rules

(* ----- zero-false-positive sweep over Table 1 ----- *)

(* (required, allowed-beyond-required) per scenario id; every id not
   listed is a tolerated-fault row and must raise NOTHING. *)
let sweep_expectations =
  [ ("pbft/byz-f", ([ "vote-divergence" ], [ "checkpoint-mismatch" ]));
    (* beyond the bound: agreement is actually violated, so health rules
       fire cluster-wide and accusations may land anywhere *)
    ( "pbft/byz-f+1",
      ( [ "equivocation" ],
        [ "premature-commit"; "disagreement"; "prefix-lag"; "checkpoint-mismatch";
          "vote-divergence"; "duplicate-flood"; "retx-storm"; "quorum-stall" ] ) );
    ("minbft/byz-f", ([ "vote-divergence" ], []));
    ( "minbft/faulty-tee",
      ([ "disagreement" ], [ "prefix-lag"; "quorum-stall"; "vote-divergence" ]) );
    ( "splitbft/enclave-f-each-type",
      ( [ "equivocation"; "premature-commit"; "vote-divergence"; "checkpoint-mismatch" ],
        [ "duplicate-flood" ] ) );
    ( "splitbft/exec-f+1-corrupt",
      ([ "vote-divergence" ], [ "checkpoint-mismatch"; "disagreement" ]) );
    ("splitbft/exec-leak", ([ "confidentiality-leak" ], []));
    ("splitbft/env-starve-all", ([ "quorum-stall" ], [ "retx-storm"; "prefix-lag" ])) ]

let check_sweep_row (s : H.Scenarios.scenario) =
  let o = H.Scenarios.run ~detect:true s in
  checkb (s.H.Scenarios.id ^ ": verdict matches Table 1") true
    (H.Scenarios.matches_expectation o);
  (match o.H.Scenarios.check_failure with
  | None -> ()
  | Some reason -> Alcotest.failf "%s: check failed: %s" s.H.Scenarios.id reason);
  let required, extra =
    match List.assoc_opt s.H.Scenarios.id sweep_expectations with
    | Some (r, e) -> (r, e)
    | None -> ([], [])
  in
  let allowed = required @ extra in
  let fired =
    List.sort_uniq compare
      (List.map (fun (a : H.Detector.alert) -> a.H.Detector.rule) o.H.Scenarios.alerts)
  in
  List.iter
    (fun rule ->
      checkb
        (Printf.sprintf "%s: %s detected" s.H.Scenarios.id rule)
        true (List.mem rule fired))
    required;
  List.iter
    (fun (a : H.Detector.alert) ->
      checkb
        (Printf.sprintf "%s: FALSE POSITIVE %s" s.H.Scenarios.id (H.Detector.describe a))
        true
        (List.mem a.H.Detector.rule allowed))
    o.H.Scenarios.alerts;
  (* anomalous rows (and only those) produce a flight artifact for CI *)
  match Sys.getenv_opt "DETECT_ARTIFACT_DIR" with
  | Some dir when H.Scenarios.anomalous o ->
    ignore (H.Scenarios.dump_flight ~dir o)
  | _ -> ()

let sweep_cases =
  List.map
    (fun (s : H.Scenarios.scenario) ->
      Alcotest.test_case (Printf.sprintf "sweep: %s" s.H.Scenarios.id) `Slow (fun () ->
          check_sweep_row s))
    H.Scenarios.all

(* ----- inertness: recording and detecting must not perturb the run ----- *)

(* A flight recorder (plus a listener) is a pure in-memory side effect:
   the metrics registry of a recorded run is byte-for-byte the registry
   of a bare run, and the workload result is identical. *)
let test_flight_recording_is_inert () =
  let run ~with_flight =
    let params =
      { (H.Cluster.default_params Proto_splitbft.protocol) with H.Cluster.seed = 7L }
    in
    let flight = if with_flight then Some (Obs.Flight.create ()) else None in
    let cluster = H.Cluster.create ?flight params in
    (match flight with
    | Some fl -> Obs.Flight.on_event fl (fun (_ : Obs.Flight.event) -> ())
    | None -> ());
    let spec =
      { H.Workload.default_spec with
        H.Workload.clients = 4;
        warmup_us = 20_000.0;
        duration_us = 200_000.0 }
    in
    let r = H.Workload.run cluster spec in
    (Obs.Registry.to_json_string (H.Cluster.obs cluster), r, flight)
  in
  let json_bare, r_bare, _ = run ~with_flight:false in
  let json_rec, r_rec, flight = run ~with_flight:true in
  Alcotest.(check string) "registry byte-identical" json_bare json_rec;
  checki "same completions" r_bare.H.Workload.completed_total r_rec.H.Workload.completed_total;
  match flight with
  | Some fl -> checkb "events were recorded" true (Obs.Flight.recorded fl > 0)
  | None -> assert false

(* Detection is deterministic: the same scenario at the same seed yields
   the same alert sequence. *)
let test_detection_deterministic () =
  let s = Option.get (H.Scenarios.find "splitbft/enclave-f-each-type") in
  let describe o = List.map H.Detector.describe o.H.Scenarios.alerts in
  let a = describe (H.Scenarios.run ~detect:true s) in
  let b = describe (H.Scenarios.run ~detect:true s) in
  Alcotest.(check (list string)) "same alerts" a b

(* ----- flight artifacts ----- *)

let test_flight_dump_roundtrip () =
  (* starve-all: the quorum-stall alert lands late in the run, after the
     cluster has gone quiet, so the bounded ring still holds it at dump
     time (an early alert in a busy run is legitimately evicted) *)
  let s = Option.get (H.Scenarios.find "splitbft/env-starve-all") in
  let o = H.Scenarios.run ~detect:true s in
  checkb "starved row is anomalous" true (H.Scenarios.anomalous o);
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "splitbft-detect-test" in
  match H.Scenarios.dump_flight ~dir o with
  | None -> Alcotest.fail "detect run carried no recorder"
  | Some path ->
    let events = Result.get_ok (Obs.Flight.load path) in
    checkb "artifact holds events" true (events <> []);
    (* the detector's alert is itself on the recording *)
    checkb "alert event recorded" true
      (List.exists (fun (e : Obs.Flight.event) -> e.Obs.Flight.kind = "alert") events);
    Sys.remove path

(* ----- crashed hosts leave no stale gauges ----- *)

let test_crash_resets_gauges () =
  let params =
    { (H.Cluster.default_params Proto_splitbft.protocol) with H.Cluster.seed = 3L }
  in
  let cluster = H.Cluster.create params in
  let clients = H.Cluster.make_clients cluster ~count:6 ~window:2 () in
  List.iter
    (fun c ->
      Splitbft_client.Client.start c ~on_ready:(fun () ->
          for i = 1 to 100 do
            Splitbft_client.Client.submit c
              ~op:(Splitbft_app.Kvs.encode_op (Splitbft_app.Kvs.Put ("k" ^ string_of_int i, "v")))
              ~on_result:(fun ~latency_us:_ ~result:_ -> ())
          done))
    clients;
  (* crash mid-flight, while queues are hot *)
  ignore
    (Engine.schedule (H.Cluster.engine cluster) ~delay:30_000.0 ~label:"test:crash"
       (fun () -> H.Cluster.crash_host cluster 2));
  H.Cluster.run cluster ~until_us:600_000.0;
  let reg = H.Cluster.obs cluster in
  (* the dead incarnation's serial loop and queue gauges must read idle *)
  (match Obs.Registry.read reg ~labels:[ ("resource", "broker2-loop") ] "resource.queue_us" with
  | None -> ()  (* never registered on this deployment *)
  | Some v -> checkb (Printf.sprintf "broker2-loop queue reset on crash (got %g)" v) true (v = 0.0));
  List.iter
    (fun c ->
      match
        Obs.Registry.read reg
          ~labels:[ ("enclave", Printf.sprintf "replica2-%s" (Ids.compartment_name c)) ]
          "tee.pool_backlog_us"
      with
      | None -> ()
      | Some v ->
        checkb (Printf.sprintf "replica2-%s backlog reset (got %g)" (Ids.compartment_name c) v)
          true (v = 0.0))
    Ids.all_compartments

let suites =
  [ ( "detect",
      [ Alcotest.test_case "rule catalog fully exercised" `Quick test_catalog_covered;
        Alcotest.test_case "flight recording is inert" `Quick test_flight_recording_is_inert;
        Alcotest.test_case "detection is deterministic" `Slow test_detection_deterministic;
        Alcotest.test_case "flight artifact roundtrip" `Slow test_flight_dump_roundtrip;
        Alcotest.test_case "crash leaves no stale gauges" `Quick test_crash_resets_gauges ]
      @ coverage_cases );
    ("detect.sweep", sweep_cases) ]
