module H = Splitbft_harness
module Cluster = H.Cluster
module Proto = Splitbft_proto
module Workload = H.Workload
module Safety = H.Safety
module Scenarios = H.Scenarios
module Experiments = H.Experiments
module Table = H.Table

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_cluster_protocol_dispatch () =
  List.iter
    (fun (name, protocol) ->
      let c = Cluster.create { (Cluster.default_params protocol) with Cluster.seed = 3L } in
      checki (name ^ " replica count")
        (if name = "minbft" then 3 else 4)
        (List.length (Cluster.nodes c));
      checki (name ^ " f") 1 (Cluster.f c);
      Alcotest.(check string) "protocol name" name (Cluster.protocol_name c))
    Proto.Catalog.builtins

let test_workload_fault_free () =
  let c = Cluster.create { (Cluster.default_params Proto.Proto_pbft.protocol) with Cluster.seed = 3L } in
  let scanner = Safety.install_scanner c in
  let r =
    Workload.run c
      { Workload.default_spec with
        Workload.clients = 2;
        warmup_us = 0.0;
        duration_us = 400_000.0 }
  in
  checkb "throughput positive" true (r.Workload.throughput_ops > 0.0);
  checki "no wrong results" 0 r.Workload.wrong_results;
  checki "clients ready" 2 r.Workload.clients_ready;
  let v =
    Safety.verdict c ~honest:[ 0; 1; 2; 3 ] ~scanner ~workload:r ~min_completed:10
  in
  checkb "live" true v.Safety.live;
  checkb "safe" true v.Safety.safe;
  (* PBFT sends plaintext: the canary scanner must fire. *)
  checkb "plaintext visible" false v.Safety.confidential

let test_splitbft_workload_confidential () =
  let c =
    Cluster.create { (Cluster.default_params Proto.Proto_splitbft.protocol) with Cluster.seed = 3L }
  in
  let scanner = Safety.install_scanner c in
  let r =
    Workload.run c
      { Workload.default_spec with
        Workload.clients = 2;
        warmup_us = 0.0;
        duration_us = 400_000.0 }
  in
  let v = Safety.verdict c ~honest:[ 0; 1; 2; 3 ] ~scanner ~workload:r ~min_completed:10 in
  checkb "live" true v.Safety.live;
  checkb "safe" true v.Safety.safe;
  checkb "confidential" true v.Safety.confidential

let test_agreement_detects_divergence () =
  (* The pbft/byz-f+1 scenario must produce a Conflict via the checker. *)
  let s = Option.get (Scenarios.find "pbft/byz-f+1") in
  let o = Scenarios.run ~seed:42L s in
  checkb "scenario flags violation" false o.Scenarios.verdict.Safety.safe;
  checkb "expectation matched" true (Scenarios.matches_expectation o)

let test_scenario_fault_free_splitbft () =
  let s = Option.get (Scenarios.find "splitbft/fault-free") in
  let o = Scenarios.run ~seed:42L s in
  checkb "matches" true (Scenarios.matches_expectation o);
  checkb "live" true o.Scenarios.verdict.Safety.live;
  checkb "confidential" true o.Scenarios.verdict.Safety.confidential

let test_scenario_faulty_tee () =
  let s = Option.get (Scenarios.find "minbft/faulty-tee") in
  let o = Scenarios.run ~seed:42L s in
  checkb "matches" true (Scenarios.matches_expectation o);
  checkb "unsafe" false o.Scenarios.verdict.Safety.safe

let test_scenario_crash_recover () =
  let s = Option.get (Scenarios.find "splitbft/crash-recover") in
  let o = Scenarios.run ~seed:42L s in
  checkb "matches" true (Scenarios.matches_expectation o);
  Alcotest.(check (option string)) "recovery check passes" None o.Scenarios.check_failure

let test_scenario_rollback_refused () =
  let s = Option.get (Scenarios.find "splitbft/rollback-attack") in
  let o = Scenarios.run ~seed:42L s in
  checkb "matches" true (Scenarios.matches_expectation o);
  Alcotest.(check (option string)) "refusal check passes" None o.Scenarios.check_failure

let test_rollback_tamper_refused_direct () =
  (* Seal checkpoints under load, crash, reset the monotonic counter, and
     restart: recovery must refuse the (now unbindable) sealed state and
     stay down, loudly. *)
  let c =
    Cluster.create
      { (Cluster.default_params Proto.Proto_splitbft.protocol) with
        Cluster.seed = 11L;
        checkpoint_interval = 8 }
  in
  ignore
    (Workload.run c
       { Workload.default_spec with
         Workload.clients = 2;
         warmup_us = 0.0;
         duration_us = 500_000.0 });
  Cluster.crash_host c 3;
  Cluster.tamper_checkpoint_counter c 3;
  Cluster.restart_host c 3;
  let e = Cluster.engine c in
  Cluster.run c ~until_us:(Splitbft_sim.Engine.now e +. 400_000.0);
  let n3 = Cluster.node c 3 in
  checkb "restart refused" false (Cluster.recovered_of n3);
  checkb "alert raised" true (Cluster.recovery_alerts_of n3 <> [])

let test_partition_then_heal () =
  (* Isolate replica 3; the 3-replica majority keeps committing; after the
     heal replica 3 catches back up to the quorum's history. *)
  let module Addr = Splitbft_types.Addr in
  let module Engine = Splitbft_sim.Engine in
  let module Network = Splitbft_sim.Network in
  let c =
    Cluster.create { (Cluster.default_params Proto.Proto_splitbft.protocol) with Cluster.seed = 7L }
  in
  let e = Cluster.engine c in
  let net = Cluster.network c in
  let at_heal = ref 0L in
  ignore
    (Engine.schedule e ~delay:200_000.0 ~label:"test:partition" (fun () ->
         Network.partition net [ [ Addr.replica 3 ] ]));
  ignore
    (Engine.schedule e ~delay:700_000.0 ~label:"test:heal" (fun () ->
         at_heal := Cluster.last_executed_of (Cluster.node c 3);
         Network.heal net));
  let scanner = Safety.install_scanner c in
  let r =
    Workload.run c
      { Workload.default_spec with
        Workload.clients = 4;
        warmup_us = 0.0;
        duration_us = 1_500_000.0 }
  in
  let v = Safety.verdict c ~honest:[ 0; 1; 2; 3 ] ~scanner ~workload:r ~min_completed:20 in
  checkb "live through partition" true v.Safety.live;
  checkb "safe" true v.Safety.safe;
  let n3 = Cluster.last_executed_of (Cluster.node c 3) in
  checkb "replica 3 progressed after heal" true (Int64.compare n3 !at_heal > 0);
  (* ... and is within one checkpoint window of the quorum. *)
  let n0 = Cluster.last_executed_of (Cluster.node c 0) in
  checkb "replica 3 caught up" true (Int64.compare (Int64.sub n0 n3) 64L <= 0)

let test_scenario_ids_unique () =
  let ids = List.map (fun s -> s.Scenarios.id) Scenarios.all in
  checki "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids))

let test_table2_counts () =
  let rows = Experiments.table2 () in
  checki "five components" 5 (List.length rows);
  List.iter
    (fun r ->
      checkb (r.Experiments.component ^ " nonempty") true (r.Experiments.total_loc > 0);
      checki
        (r.Experiments.component ^ " total = shared + logic")
        r.Experiments.total_loc
        (r.Experiments.shared_loc + r.Experiments.logic_loc))
    rows;
  (* The trusted counter must be tiny relative to the compartments, as in
     the paper. *)
  let find name = List.find (fun r -> r.Experiments.component = name) rows in
  checkb "counter << compartments" true
    ((find "Trusted Counter").Experiments.total_loc
    < (find "Preparation Enc.").Experiments.total_loc / 5)

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ] in
  checkb "has rule" true (String.length s > 0 && String.contains s '-');
  Alcotest.(check string) "formats" "a    bb\n---  --\n1    2 \n333  4 " s

let test_formatting_helpers () =
  Alcotest.(check string) "us small" "500us" (Table.us 500.0);
  Alcotest.(check string) "us large" "12.0ms" (Table.us 12_000.0);
  Alcotest.(check string) "ops small" "500" (Table.ops 500.0);
  Alcotest.(check string) "ops large" "25.0k" (Table.ops 25_000.0);
  Alcotest.(check string) "pct" "64%" (Table.pct 0.64)

let suites =
  [ ( "harness",
      [ Alcotest.test_case "cluster dispatch" `Quick test_cluster_protocol_dispatch;
        Alcotest.test_case "pbft workload + verdict" `Quick test_workload_fault_free;
        Alcotest.test_case "splitbft confidential" `Quick test_splitbft_workload_confidential;
        Alcotest.test_case "divergence detected" `Slow test_agreement_detects_divergence;
        Alcotest.test_case "scenario splitbft ok" `Slow test_scenario_fault_free_splitbft;
        Alcotest.test_case "scenario faulty tee" `Slow test_scenario_faulty_tee;
        Alcotest.test_case "scenario crash-recover" `Slow test_scenario_crash_recover;
        Alcotest.test_case "scenario rollback refused" `Slow test_scenario_rollback_refused;
        Alcotest.test_case "tampered counter refused" `Slow test_rollback_tamper_refused_direct;
        Alcotest.test_case "partition then heal" `Slow test_partition_then_heal;
        Alcotest.test_case "scenario ids unique" `Quick test_scenario_ids_unique;
        Alcotest.test_case "table2 counts" `Quick test_table2_counts;
        Alcotest.test_case "table render" `Quick test_table_render;
        Alcotest.test_case "format helpers" `Quick test_formatting_helpers ] ) ]
