(* Hot-path layer tests: the bounded LRU underneath the verified-digest
   cache, the cache's hit/miss metering, and — the load-bearing property —
   that the cache and the copy-elision plumbing are semantics-preserving:
   the same seeded run, with the layer on and off, executes the same
   operations in the same order at every honest replica, under fault
   schedules that include view changes and crash recovery. *)

module Lru = Splitbft_util.Lru
module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module Registry = Splitbft_obs.Registry
module S = Splitbft_core.Replica
module Sconfig = Splitbft_core.Config
module Client = Splitbft_client.Client
module Kvs = Splitbft_app.Kvs

let checkb msg = Alcotest.(check bool) msg
let checki msg = Alcotest.(check int) msg

(* ----- LRU: bound, eviction order, promotion ----- *)

let test_lru_bound_and_eviction () =
  let c = Lru.create ~capacity:3 in
  for i = 1 to 5 do
    Lru.add c (string_of_int i) i
  done;
  checki "bounded" 3 (Lru.length c);
  checkb "oldest evicted" true (Lru.find c "1" = None && Lru.find c "2" = None);
  checkb "newest kept" true
    (Lru.find c "3" = Some 3 && Lru.find c "4" = Some 4 && Lru.find c "5" = Some 5)

let test_lru_promotion () =
  let c = Lru.create ~capacity:3 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  Lru.add c "c" 3;
  (* Touch "a" so "b" becomes the eviction victim. *)
  checkb "hit" true (Lru.find c "a" = Some 1);
  Lru.add c "d" 4;
  checkb "promoted key survives" true (Lru.find c "a" = Some 1);
  checkb "lru victim evicted" true (Lru.find c "b" = None);
  (* Overwriting an existing key must not grow the map or evict. *)
  Lru.add c "c" 33;
  checki "overwrite keeps length" 3 (Lru.length c);
  checkb "overwrite visible" true (Lru.find c "c" = Some 33)

let test_lru_capacity_zero () =
  let c = Lru.create ~capacity:0 in
  Lru.add c "a" 1;
  checki "never stores" 0 (Lru.length c);
  checkb "always misses" true (Lru.find c "a" = None);
  checkb "negative rejected" true
    (match Lru.create ~capacity:(-1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_lru_clear_keeps_stats () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  ignore (Lru.find c "a");
  ignore (Lru.find c "zzz");
  let h, m = (Lru.hits c, Lru.misses c) in
  Lru.clear c;
  checki "emptied" 0 (Lru.length c);
  checki "hits survive clear" h (Lru.hits c);
  checki "misses survive clear" m (Lru.misses c);
  checkb "entries gone" true (Lru.find c "a" = None)

(* ----- LRU vs a naive reference model -----

   The model is an association list in most-recently-used order; [add]
   re-fronts and truncates, [find] re-fronts.  Every lookup result must
   match, for arbitrary op sequences over a small key space (so
   collisions, overwrites and evictions all actually happen). *)

let model_add cap l k v =
  let l = List.remove_assoc k l in
  let l = (k, v) :: l in
  if List.length l > cap then List.filteri (fun i _ -> i < cap) l else l

let model_find l k =
  match List.assoc_opt k l with
  | None -> (l, None)
  | Some v -> ((k, v) :: List.remove_assoc k l, Some v)

let prop_lru_matches_model =
  QCheck.Test.make ~name:"lru agrees with naive model" ~count:200
    QCheck.(
      pair (1 -- 4) (small_list (pair bool (0 -- 5))))
    (fun (cap, ops) ->
      let c = Lru.create ~capacity:cap in
      let model = ref [] in
      List.for_all
        (fun (is_add, k) ->
          let key = string_of_int k in
          if is_add then begin
            Lru.add c key k;
            model := model_add cap !model key k;
            Lru.length c = List.length !model
          end
          else begin
            let m, expect = model_find !model key in
            model := m;
            Lru.find c key = expect
          end)
        ops)

(* ----- seeded SplitBFT runs, cache on vs off -----

   Chaos-style direct deployment (no harness) so the fault schedule and
   the verify-cache capacity are both explicit knobs. *)

type outcome = {
  wrong : int;  (* client results that differed from the app's answer *)
  logs : (int, string) Hashtbl.t list;  (* per honest replica: seq -> digest *)
  hits : float;
  misses : float;
}

let run_splitbft ~capacity ~seed ~crash_primary ~restart ~drop_prob =
  let engine = Engine.create ~seed () in
  let net =
    Network.create engine
      { Network.default_config with Network.drop_probability = drop_prob }
  in
  let n = 4 in
  let replicas =
    List.init n (fun id ->
        S.create engine net
          { (Sconfig.default ~n ~id) with
            Sconfig.suspect_timeout_us = 150_000.0;
            viewchange_timeout_us = 300_000.0;
            verify_cache_capacity = capacity }
          ~app:(fun () -> Kvs.create ()))
  in
  if crash_primary then begin
    ignore
      (Engine.schedule engine ~delay:120_000.0 ~label:"hotpath-crash" (fun () ->
           S.crash_host (List.nth replicas 0)));
    if restart then
      ignore
        (Engine.schedule engine ~delay:620_000.0 ~label:"hotpath-restart" (fun () ->
             S.restart_host (List.nth replicas 0)))
  end;
  let wrong = ref 0 in
  let cl =
    Client.create engine net
      { (Client.default_config (Client.Splitbft { ready_quorum = 3 }) ~n ~id:0) with
        Client.retry_timeout_us = 200_000.0 }
  in
  let submit_wave lo hi =
    for i = lo to hi do
      Client.submit cl
        ~op:(Kvs.encode_op (Kvs.Put (Printf.sprintf "k%d" i, "v")))
        ~on_result:(fun ~latency_us:_ ~result ->
          if not (String.equal result Kvs.ok) then incr wrong)
    done
  in
  Client.start cl ~on_ready:(fun () -> submit_wave 1 12);
  (* A second wave lands after the crash point so a dead primary leaves
     requests unanswered — otherwise suspicion never fires and the crash
     schedule degenerates to the fault-free one. *)
  ignore
    (Engine.schedule engine ~delay:200_000.0 ~label:"hotpath-wave2" (fun () ->
         submit_wave 13 24));
  Engine.run ~until:1_600_000.0 engine;
  let logs =
    List.map
      (fun r ->
        let t = Hashtbl.create 64 in
        List.iter (fun (seq, d) -> Hashtbl.replace t seq d) (S.executed_log r);
        t)
      replicas
  in
  let obs = Engine.obs engine in
  { wrong = !wrong;
    logs;
    hits = Registry.sum obs ~prefix:"tee.verify_cache_hits";
    misses = Registry.sum obs ~prefix:"tee.verify_cache_misses" }

(* Every sequence number executed in both runs must carry the same digest
   (prefix agreement across the on/off pair, for every replica pair). *)
let cross_agreement a b =
  List.for_all
    (fun ta ->
      List.for_all
        (fun tb ->
          Hashtbl.fold
            (fun seq da acc ->
              acc
              &&
              match Hashtbl.find_opt tb seq with
              | Some db -> String.equal da db
              | None -> true)
            ta true)
        b.logs)
    a.logs

let test_metering_hits_and_disabled_counters () =
  (* A view change (primary crash) plus recovery re-verifies carried
     proofs: the cached run must record hits, and the disabled run must
     never touch the counters at all. *)
  let on =
    run_splitbft ~capacity:1024 ~seed:11L ~crash_primary:true ~restart:true
      ~drop_prob:0.0
  in
  checkb "cached run made progress" true
    (List.exists (fun t -> Hashtbl.length t > 0) on.logs);
  checkb "cache hits recorded" true (on.hits > 0.0);
  checkb "cache misses recorded" true (on.misses > 0.0);
  let off =
    run_splitbft ~capacity:0 ~seed:11L ~crash_primary:true ~restart:true
      ~drop_prob:0.0
  in
  checkb "disabled run made progress" true
    (List.exists (fun t -> Hashtbl.length t > 0) off.logs);
  checkb "disabled cache never hits" true (off.hits = 0.0);
  checkb "disabled cache never misses" true (off.misses = 0.0);
  checkb "same executions either way" true (cross_agreement on off)

(* ----- differential property: cache on ≡ cache off -----

   For arbitrary seeds and fault schedules (fault-free, view change,
   crash-recovery, lossy links), the hot-path layer must not change what
   gets executed: zero wrong client results on both sides, and cross-run
   prefix agreement between every replica of the cached run and every
   replica of the uncached run. *)

type diff_plan = {
  seed : int64;
  crash_primary : bool;
  restart : bool;
  drop_prob : float;
}

let diff_gen =
  QCheck.Gen.(
    map
      (fun (seed, crash, restart, drop) ->
        { seed = Int64.of_int seed;
          crash_primary = crash = 0;
          restart = restart = 0;
          drop_prob = float_of_int drop /. 1000.0 })
      (tup4 (1 -- 10_000) (0 -- 2) (0 -- 1) (0 -- 20)))

let diff_print p =
  Printf.sprintf "seed=%Ld crash=%b restart=%b drop=%.3f" p.seed p.crash_primary
    p.restart p.drop_prob

let qcheck_count =
  match Sys.getenv_opt "QCHECK_COUNT" with
  | Some s -> ( try max 1 (int_of_string s) with _ -> 6)
  | None -> 6

let prop_cached_equals_uncached =
  QCheck.Test.make ~name:"verify cache is semantics-preserving"
    ~count:qcheck_count
    (QCheck.make ~print:diff_print diff_gen)
    (fun p ->
      let run capacity =
        run_splitbft ~capacity ~seed:p.seed ~crash_primary:p.crash_primary
          ~restart:p.restart ~drop_prob:p.drop_prob
      in
      let on = run 1024 and off = run 0 in
      on.wrong = 0 && off.wrong = 0 && off.hits = 0.0 && cross_agreement on off)

let suites =
  [ ( "hotpath",
      [ Alcotest.test_case "lru bound and eviction" `Quick test_lru_bound_and_eviction;
        Alcotest.test_case "lru promotion" `Quick test_lru_promotion;
        Alcotest.test_case "lru capacity zero" `Quick test_lru_capacity_zero;
        Alcotest.test_case "lru clear keeps stats" `Quick test_lru_clear_keeps_stats;
        QCheck_alcotest.to_alcotest prop_lru_matches_model;
        Alcotest.test_case "cache metering on/off" `Quick
          test_metering_hits_and_disabled_counters;
        QCheck_alcotest.to_alcotest ~long:true prop_cached_equals_uncached ] ) ]
