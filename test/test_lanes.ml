(* Regression and unit coverage for the multi-lane pipeline, the
   Execution worker pool, and the hot-path ordering bugfixes that shipped
   with them:

   - the Preparation primary used to drop batches arriving against a full
     watermark window instead of parking them (leader stall at the
     window edge);
   - the broker's primary-side inflight table used to suppress client
     retransmits forever once a batch was lost, because entries were only
     cleared by a reply or a view change (inflight-suppression leak);
   - [Execution] used to order commit seqnos with polymorphic [compare]
     over tuples, which inspects payload bytes on seqno ties instead of
     being a pure seqno order ([Log.by_seqno]).

   Each scenario fails on the pre-fix code and passes now. *)

module Engine = Splitbft_sim.Engine
module Network = Splitbft_sim.Network
module Registry = Splitbft_obs.Registry
module Replica = Splitbft_core.Replica
module Config = Splitbft_core.Config
module Broker = Splitbft_core.Broker
module Preparation = Splitbft_core.Preparation
module Log = Splitbft_consensus.Log
module Ids = Splitbft_types.Ids
module Client = Splitbft_client.Client
module Kvs = Splitbft_app.Kvs

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

type cluster = {
  engine : Engine.t;
  net : Network.t;
  obs : Registry.t;
  replicas : Replica.t list;
}

let make ?(seed = 5L) ?(lanes = 1) ?(workers = 1) ?(watermark_window = 1024)
    ?(checkpoint_interval = 64) ?(suspect_timeout_us = 200_000.0) () =
  let obs = Registry.create () in
  let engine = Engine.create ~obs ~seed () in
  let net = Network.create engine Network.default_config in
  let replicas =
    List.init 4 (fun i ->
        Replica.create engine net
          { (Config.default ~n:4 ~id:i) with
            Config.lanes;
            exec_workers = workers;
            watermark_window;
            checkpoint_interval;
            suspect_timeout_us;
            viewchange_timeout_us = suspect_timeout_us *. 2.0 }
          ~app:(fun () -> Kvs.create ()))
  in
  { engine; net; obs; replicas }

(* Drive an explicit op list; [on_ready] runs after the handshake but
   before the first submission (fault-injection hook). *)
let drive ?(until = 10_000_000.0) ?(window = 1) ?(on_ready = fun () -> ()) c ops
    =
  let results = Array.make (List.length ops) "<none>" in
  let completed = ref 0 in
  let cl =
    Client.create c.engine c.net
      { (Client.default_config (Client.Splitbft { ready_quorum = 4 }) ~n:4 ~id:0)
        with
        Client.window;
        retry_timeout_us = 300_000.0 }
  in
  Client.start cl ~on_ready:(fun () ->
      on_ready ();
      List.iteri
        (fun i op ->
          Client.submit cl ~op:(Kvs.encode_op op)
            ~on_result:(fun ~latency_us:_ ~result ->
              incr completed;
              results.(i) <- result))
        ops);
  Engine.run ~until c.engine;
  (!completed, results)

let puts n = List.init n (fun i -> Kvs.Put (Printf.sprintf "k%d" i, "v"))

(* ----- satellite 1: leader stall at the watermark edge ----- *)

(* A client window wider than the watermark window forces the primary to
   accept batches it cannot issue yet.  Pre-fix these were silently
   dropped and — with suspicion effectively off — the excess ops never
   completed.  Post-fix they park and drain as checkpoints stabilise. *)
let test_watermark_stall_drains () =
  let c =
    make ~lanes:4 ~watermark_window:8 ~checkpoint_interval:4
      ~suspect_timeout_us:60_000_000.0 ()
  in
  let max_parked = ref 0 in
  let primary = List.nth c.replicas 0 in
  (* The parking spike lives between the batch burst and the first
     checkpoint stabilization — sample densely while it can happen. *)
  let rec sample () =
    let p = (Replica.prep_probe primary).Preparation.parked () in
    if p > !max_parked then max_parked := p;
    if Engine.now c.engine < 20_000.0 then
      ignore (Engine.schedule c.engine ~delay:50.0 ~label:"sample-parked" sample)
  in
  ignore (Engine.schedule c.engine ~delay:50.0 ~label:"sample-parked" sample);
  let completed, _ = drive ~window:16 c (puts 30) in
  checki "all ops complete past the window edge" 30 completed;
  checkb "the parking path was exercised" true (!max_parked > 0);
  checki "nothing left parked" 0
    ((Replica.prep_probe primary).Preparation.parked ());
  checkb "no view change was needed" true (Replica.view primary = 0)

(* ----- satellite 2: inflight-suppression leak ----- *)

(* The primary's Preparation enclave is starved just before the only
   request is batched, so the batch is lost after the broker marked the
   request inflight.  The fault clears shortly after, but pre-fix the
   inflight entry suppressed every retransmit forever (suspicion is
   effectively off, so no view change flushes the table) and the op never
   committed.  Post-fix the entry ages out after [inflight_ttl_us] and
   the next retransmit is re-driven. *)
let test_inflight_ttl_evicts_stale_suppression () =
  let c = make ~suspect_timeout_us:60_000_000.0 () in
  let primary = List.nth c.replicas 0 in
  let completed, results =
    drive ~until:10_000_000.0
      ~on_ready:(fun () ->
        Replica.set_env_fault primary (Broker.Env_starve Ids.Preparation);
        ignore
          (Engine.schedule c.engine ~delay:450_000.0 ~label:"heal" (fun () ->
               Replica.set_env_fault primary Broker.Env_honest)))
      c
      [ Kvs.Put ("k", "v") ]
  in
  checki "retransmit eventually commits" 1 completed;
  checks "reply is the real execution result" Kvs.ok results.(0);
  checkb "no view change was needed" true (Replica.view primary = 0)

(* ----- satellite 3: seqno ordering must not inspect payloads ----- *)

let test_by_seqno_is_a_pure_seqno_order () =
  let l = [ (5, "b"); (5, "a"); (3, "z") ] in
  checkb "ties keep arrival order" true
    (List.stable_sort Log.by_seqno l = [ (3, "z"); (5, "b"); (5, "a") ]);
  (* The pre-fix polymorphic [compare] is not seqno order: it breaks the
     tie on payload bytes... *)
  checkb "polymorphic compare reorders the tie" true
    (List.sort compare l = [ (3, "z"); (5, "a"); (5, "b") ]);
  (* ...and is not even defined for payloads without a structural order. *)
  let closures = [ (1, fun () -> 1); (1, fun () -> 2) ] in
  (match
     try `Sorted (List.stable_sort Log.by_seqno closures)
     with Invalid_argument _ -> `Raised
   with
  | `Sorted [ (1, f); (1, g) ] -> checki "stable on closures" 3 (f () + g ())
  | _ -> Alcotest.fail "by_seqno must not inspect payloads");
  (match
     try
       ignore (List.sort compare closures);
       `Sorted
     with Invalid_argument _ -> `Raised
   with
  | `Raised -> ()
  | `Sorted -> Alcotest.fail "expected polymorphic compare to raise on closures")

(* ----- lanes: cursor realignment across a view change ----- *)

(* After the primary crashes and the cluster moves to a new view, every
   survivor must re-derive lane cursors that partition the seqno space:
   one cursor per residue class mod [lanes], all beyond the issued
   prefix. *)
let test_lane_cursors_realign_after_view_change () =
  let c = make ~lanes:4 ~checkpoint_interval:8 () in
  let completed, _ =
    drive ~window:4
      ~on_ready:(fun () ->
        (* Mid-stream, after a prefix has committed in view 0. *)
        ignore
          (Engine.schedule c.engine ~delay:1_000.0 ~label:"crash" (fun () ->
               Replica.crash_host (List.nth c.replicas 0))))
      c (puts 30)
  in
  checki "all ops complete across the view change" 30 completed;
  List.iteri
    (fun i r ->
      if i > 0 then begin
        checkb "view changed" true (Replica.view r >= 1);
        let cursors = (Replica.prep_probe r).Preparation.lane_cursors () in
        checki "one cursor per lane" 4 (List.length cursors);
        let residues =
          List.sort_uniq Stdlib.compare
            (List.map (fun s -> (s - 1) mod 4) cursors)
        in
        checki "cursors partition the residue classes" 4 (List.length residues);
        (* Only the primary advances cursors by issuing; backups keep
           theirs where realignment put them. *)
        if Replica.id r = Ids.primary_of_view ~n:4 (Replica.view r) then
          List.iter
            (fun s ->
              checkb "primary cursors are beyond the executed prefix" true
                (s > Replica.last_executed r))
            cursors
      end)
    c.replicas

(* ----- worker pool: conflicts serialise, merge is deterministic ----- *)

let hot n =
  List.init n (fun i ->
      if i mod 4 = 3 then Kvs.Get "hot"
      else Kvs.Put ("hot", "v" ^ string_of_int i))

(* With the arrival order pinned (client window 1), the worker pool must
   not change a single reply byte, the executed log, or the final state
   relative to the single-worker pipeline: pool scheduling moves cost and
   delivery timing, never state transitions. *)
let test_pool_merge_is_deterministic () =
  let run workers =
    let c = make ~lanes:4 ~workers ~checkpoint_interval:8 () in
    let completed, results = drive ~window:1 c (hot 30) in
    checki "all ops complete" 30 completed;
    (c, results)
  in
  let serial, serial_results = run 1 in
  let pooled, pooled_results = run 4 in
  checkb "pool actually ran tasks" true
    (Registry.sum pooled.obs ~prefix:"tee.pool_tasks" > 0.0);
  Array.iteri
    (fun i r -> checks (Printf.sprintf "reply %d identical" i) r pooled_results.(i))
    serial_results;
  List.iter2
    (fun a b ->
      checks "final state identical" (Replica.app_digest a) (Replica.app_digest b);
      checkb "executed logs identical" true
        (Replica.executed_log a = Replica.executed_log b))
    serial.replicas pooled.replicas

(* A deep client window over a single hot key makes consecutive batches
   write-write conflict while they overlap in the pool: the hazard
   detection must fire and the replicas must still agree. *)
let test_pool_conflicts_serialise () =
  let c = make ~lanes:4 ~workers:4 ~checkpoint_interval:8 () in
  let completed, _ = drive ~window:8 c (hot 40) in
  checki "all ops complete" 40 completed;
  checkb "pool actually ran tasks" true
    (Registry.sum c.obs ~prefix:"tee.pool_tasks" > 0.0);
  checkb "write-write hazards were detected" true
    (Registry.sum c.obs ~prefix:"tee.pool_conflict_waits" > 0.0);
  (match List.map Replica.app_digest c.replicas with
  | d :: rest -> List.iter (fun d' -> checks "replicas agree" d d') rest
  | [] -> assert false)

let suites =
  [ ( "lanes",
      [
        Alcotest.test_case "watermark edge: parked batches drain" `Quick
          test_watermark_stall_drains;
        Alcotest.test_case "inflight TTL evicts stale suppression" `Quick
          test_inflight_ttl_evicts_stale_suppression;
        Alcotest.test_case "by_seqno is a pure seqno order" `Quick
          test_by_seqno_is_a_pure_seqno_order;
        Alcotest.test_case "lane cursors realign after view change" `Quick
          test_lane_cursors_realign_after_view_change;
        Alcotest.test_case "pool merge is deterministic" `Quick
          test_pool_merge_is_deterministic;
        Alcotest.test_case "pool conflicts serialise" `Quick
          test_pool_conflicts_serialise;
      ] ) ]
