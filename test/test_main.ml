let () =
  Alcotest.run "splitbft"
    (Test_util.suites @ Test_obs.suites @ Test_codec.suites @ Test_crypto.suites @ Test_sim.suites
   @ Test_tee.suites @ Test_types.suites @ Test_consensus.suites @ Test_app.suites
   @ Test_client.suites @ Test_pbft.suites @ Test_minbft.suites @ Test_core.suites @ Test_harness.suites
   @ Test_trace.suites @ Test_hotpath.suites @ Test_lanes.suites @ Test_openloop.suites
   @ Test_chaos.suites @ Test_mc.suites @ Test_detect.suites @ Test_storage.suites)
