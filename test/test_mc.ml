(* Model checker (lib/mc) tests: the controlled-scheduler engine hooks,
   the safety predicates' edge cases, the adversary vocabulary, schedule
   artifacts, and the checker end-to-end — exhausting a tiny scope,
   containing single byzantine compartments, producing a replayable
   counterexample for an over-powered adversary, and catching a
   deliberately re-introduced view-change bug (mutation self-test). *)

module Engine = Splitbft_sim.Engine
module Safety = Splitbft_harness.Safety
module Adversary = Splitbft_mc.Adversary
module World = Splitbft_mc.World
module Driver = Splitbft_mc.Driver
module Chaos = Splitbft_mc.Chaos
module Schedule = Splitbft_mc.Schedule

let check = Alcotest.check
let zero_budgets = { World.suspect = 0; retry = 0; batch = 0; recovery = 0 }

(* ----- Engine controlled mode ----- *)

let test_engine_controlled () =
  let engine = Engine.create () in
  let fired = ref [] in
  ignore
    (Engine.schedule engine ~delay:10.0 ~label:"internal" (fun () ->
         fired := "internal" :: !fired));
  ignore
    (Engine.schedule engine
       ~cls:(Engine.Choice { host = 1; lane = 0 })
       ~fp:"payload" ~delay:5.0 ~label:"choice"
       (fun () -> fired := "choice" :: !fired));
  let live = Engine.live_events engine in
  check Alcotest.int "two live events" 2 (List.length live);
  let internal =
    List.find (fun ev -> Engine.class_of ev = Engine.Internal) live
  in
  let choice = List.find (fun ev -> Engine.class_of ev <> Engine.Internal) live in
  check Alcotest.string "choice fp" "payload" (Engine.fp_of choice);
  (* Forced firing ignores timestamp order (the scheduler, not the clock,
     decides) and never runs time backwards. *)
  Engine.fire_forced engine internal;
  check (Alcotest.float 0.0) "clock at internal's time" 10.0 (Engine.now engine);
  check Alcotest.bool "internal now dead" false (Engine.is_live internal);
  Engine.fire_forced engine choice;
  check (Alcotest.float 0.0) "clock monotone" 10.0 (Engine.now engine);
  check (Alcotest.list Alcotest.string) "both fired, forced order" [ "choice"; "internal" ] !fired;
  check Alcotest.bool "queue drained" true (Engine.live_events engine = []);
  Alcotest.check_raises "double fire rejected"
    (Invalid_argument "Engine.fire_forced choice: dead event") (fun () ->
      Engine.fire_forced engine choice)

(* ----- Safety predicates ----- *)

let agreement_t =
  Alcotest.testable
    (fun ppf a -> Format.pp_print_string ppf (Safety.describe_agreement a))
    ( = )

let test_agreement_edge_cases () =
  (* Empty run: no logs at all, and logs that are all empty. *)
  check agreement_t "no logs" Safety.Agreement (Safety.agreement_of_logs []);
  check agreement_t "all empty" Safety.Agreement
    (Safety.agreement_of_logs ~window:1 [ (0, []); (1, []) ]);
  (* Single honest replica: vacuously in agreement with itself. *)
  check agreement_t "single log" Safety.Agreement
    (Safety.agreement_of_logs ~window:1 [ (2, [ (1L, "a"); (2L, "b") ]) ]);
  (* Conflicting digest at a shared seqno. *)
  check agreement_t "conflict"
    (Safety.Conflict { seq = 2L; a = 0; b = 1 })
    (Safety.agreement_of_logs [ (0, [ (1L, "a"); (2L, "b") ]); (1, [ (1L, "a"); (2L, "X") ]) ]);
  (* Divergent prefix lengths: invisible to the pairwise shared-seqno
     check, flagged once a window is given. *)
  let lopsided = [ (0, [ (1L, "a"); (2L, "b"); (3L, "c"); (4L, "d") ]); (3, [ (1L, "a") ]) ] in
  check agreement_t "lag without window" Safety.Agreement (Safety.agreement_of_logs lopsided);
  check agreement_t "lag beyond window"
    (Safety.Prefix_lag { a = 0; b = 3; high_a = 4L; high_b = 1L; window = 2 })
    (Safety.agreement_of_logs ~window:2 lopsided);
  check agreement_t "lag within window" Safety.Agreement
    (Safety.agreement_of_logs ~window:3 lopsided)

let test_prefix_gap () =
  let opt64 = Alcotest.(option int64) in
  check opt64 "empty log" None (Safety.prefix_gap []);
  check opt64 "contiguous from 1" None (Safety.prefix_gap [ (1L, "a"); (2L, "b") ]);
  (* State transfer resumes past the installed checkpoint: contiguity is
     from the log's first entry, not from seq 1. *)
  check opt64 "contiguous from 5" None (Safety.prefix_gap [ (5L, "a"); (6L, "b"); (7L, "c") ]);
  check opt64 "internal gap" (Some 3L) (Safety.prefix_gap [ (1L, "a"); (2L, "b"); (4L, "d") ]);
  check opt64 "unsorted input ok" None (Safety.prefix_gap [ (2L, "b"); (1L, "a") ])

(* ----- Adversary vocabulary ----- *)

let test_adversary_parse () =
  let round_trip s =
    match Adversary.of_string s with
    | Ok a -> Adversary.to_string a
    | Error e -> Alcotest.failf "%s did not parse: %s" s e
  in
  List.iter
    (fun s -> check Alcotest.string s s (round_trip s))
    [ "equivocate@0"; "corrupt-digest@1"; "promiscuous-commit@2"; "stale-proof@3";
      "corrupt-result@0"; "leak-plaintext@1"; "lie-checkpoint@2"; "drop-outputs:3@1";
      "duplicate-outputs@0"; "reorder-outputs@3" ];
  check Alcotest.bool "unknown policy rejected" true
    (Result.is_error (Adversary.of_string "bribe-the-client@0"));
  check Alcotest.bool "missing replica rejected" true
    (Result.is_error (Adversary.of_string "equivocate"));
  let adv s = Result.get_ok (Adversary.of_string s) in
  check Alcotest.bool "out of range" true
    (Result.is_error (Adversary.validate ~n:4 [ adv "equivocate@4" ]));
  check Alcotest.bool "two policies, same site, same replica" true
    (Result.is_error (Adversary.validate ~n:4 [ adv "equivocate@0"; adv "corrupt-digest@0" ]));
  check Alcotest.bool "different sites on one replica ok" true
    (Result.is_ok (Adversary.validate ~n:4 [ adv "equivocate@0"; adv "corrupt-result@0" ]));
  check Alcotest.int "two sites" 2
    (List.length (Adversary.sites [ adv "equivocate@0"; adv "corrupt-result@0" ]))

(* ----- Schedule artifacts ----- *)

let test_schedule_round_trip () =
  let adv s = Result.get_ok (Adversary.of_string s) in
  let mc =
    Schedule.Mc
      { cfg =
          { World.default_config with
            World.seed = 7L;
            requests = 3;
            adversaries = [ adv "corrupt-result@0"; adv "reorder-outputs@2" ];
            crash = Some (3, true);
            lossy_viewchange = true;
            budgets = World.viewchange_budgets;
            per_host_fifo = true;
            client_window = 1 };
        schedule = [ 0; 2; 1; 0; 5 ];
        detail = "divergence at seq 1 (replicas 0 vs 2)" }
  in
  (match Schedule.of_string (Schedule.to_string mc) with
  | Ok parsed -> check Alcotest.bool "mc round-trips" true (parsed = mc)
  | Error e -> Alcotest.failf "mc artifact did not parse: %s" e);
  let chaos =
    Schedule.Chaos
      { protocol = "pbft";
        plan =
          { Chaos.seed = 99L;
            crash_host = Some 1;
            crash_delay_us = 120_000.0;
            restart = false;
            byz_enclave = Some (2, Splitbft_types.Ids.Execution);
            drop_prob = 0.013 };
        detail = "1 wrong client results accepted" }
  in
  (match Schedule.of_string (Schedule.to_string chaos) with
  | Ok parsed -> check Alcotest.bool "chaos round-trips" true (parsed = chaos)
  | Error e -> Alcotest.failf "chaos artifact did not parse: %s" e);
  check Alcotest.bool "garbage rejected" true (Result.is_error (Schedule.of_string "not a schedule"));
  check Alcotest.bool "empty schedule ok" true
    (match Schedule.of_string (Schedule.to_string (Schedule.Mc { cfg = World.default_config; schedule = []; detail = "" })) with
    | Ok (Schedule.Mc { schedule = []; _ }) -> true
    | _ -> false)

(* ----- World determinism ----- *)

let test_world_deterministic () =
  let cfg = { World.default_config with World.requests = 1; budgets = zero_budgets } in
  let walk () =
    let w = World.create cfg in
    let fps = ref [ World.fingerprint w ] in
    let rec go () =
      match World.enabled w with
      | [] -> ()
      | c :: _ ->
        World.apply w c;
        fps := World.fingerprint w :: !fps;
        go ()
    in
    go ();
    (!fps, World.completed w, World.executed_log w 0)
  in
  let fps1, completed1, log1 = walk () in
  let fps2, completed2, log2 = walk () in
  check Alcotest.bool "identical fingerprint trajectories" true (fps1 = fps2);
  check Alcotest.int "identical completions" completed1 completed2;
  check Alcotest.bool "identical executed log" true (log1 = log2);
  check Alcotest.bool "walk made protocol progress" true (List.length fps1 > 10)

(* ----- Checker end-to-end ----- *)

let quick_budget = { Driver.max_states = 400; max_depth = 120; max_wall_s = 30.0 }

let no_violation name cfg =
  let r = Driver.run ~budget:quick_budget cfg in
  match r.Driver.outcome with
  | Driver.Violation { detail; _ } -> Alcotest.failf "%s: unexpected violation: %s" name detail
  | Driver.Exhausted | Driver.Budget _ -> ()

let test_no_fault_clean () =
  no_violation "no-fault" { World.default_config with World.requests = 1; budgets = zero_budgets }

let test_small_scope_exhausts () =
  (* At per-host FIFO granularity the 1-request no-fault scope closes
     completely — the checker's "every schedule explored" claim is real,
     not a budget artifact.  (The 2-request closed-loop scope also
     closes, ~30k states; CI runs it via the `exhaust` preset.) *)
  let cfg =
    { World.default_config with
      World.requests = 1;
      budgets = zero_budgets;
      per_host_fifo = true }
  in
  let budget = { Driver.max_states = 10_000; max_depth = 100; max_wall_s = 60.0 } in
  let r = Driver.run ~budget cfg in
  match r.Driver.outcome with
  | Driver.Exhausted ->
    check Alcotest.bool "nontrivial space" true (r.Driver.stats.Driver.visited > 1_000)
  | Driver.Violation { detail; _ } -> Alcotest.failf "unexpected violation: %s" detail
  | Driver.Budget reason -> Alcotest.failf "small scope did not exhaust (%s)" reason

let test_single_compartment_contained () =
  let adv s = Result.get_ok (Adversary.of_string s) in
  List.iter
    (fun policy ->
      no_violation policy
        { World.default_config with
          World.requests = 1;
          adversaries = [ adv policy ];
          budgets = zero_budgets })
    [ "equivocate@0"; "corrupt-digest@0"; "promiscuous-commit@1"; "corrupt-result@2";
      "reorder-outputs@1"; "duplicate-outputs@1" ]

let test_overpowered_counterexample () =
  (* Two corrupt Executions reach the client's f+1 reply quorum with a
     matching wrong result: beyond the fault model, and the checker must
     hand back a schedule that reproduces it. *)
  let adv s = Result.get_ok (Adversary.of_string s) in
  let cfg =
    { World.default_config with
      World.adversaries = [ adv "corrupt-result@0"; adv "corrupt-result@1" ];
      budgets = zero_budgets }
  in
  let r = Driver.run ~budget:{ Driver.max_states = 5_000; max_depth = 150; max_wall_s = 60.0 } cfg in
  match r.Driver.outcome with
  | Driver.Violation { schedule; detail } ->
    check Alcotest.bool "wrong-result violation" true
      (String.length detail > 0
      && Safety.contains_canary detail = false (* sanity: detail is a description *));
    let minimized = Driver.minimize cfg schedule in
    check Alcotest.bool "minimization never grows" true
      (List.length minimized <= List.length schedule);
    (match Driver.replay cfg minimized with
    | `Violation (_, detail') ->
      check Alcotest.bool "replay reproduces a violation" true (String.length detail' > 0)
    | `Clean | `Diverged _ -> Alcotest.fail "minimized counterexample did not replay");
    (* The artifact round-trips through the on-disk format and still
       reproduces — what CI uploads is really replayable. *)
    let text = Schedule.to_string (Schedule.Mc { cfg; schedule = minimized; detail }) in
    (match Schedule.of_string text with
    | Ok (Schedule.Mc { cfg = cfg'; schedule = schedule'; _ }) -> (
      match Driver.replay cfg' schedule' with
      | `Violation _ -> ()
      | `Clean | `Diverged _ -> Alcotest.fail "parsed artifact did not replay")
    | Ok _ | Error _ -> Alcotest.fail "artifact did not parse back")
  | Driver.Exhausted -> Alcotest.fail "overpowered adversary found no violation (exhausted)"
  | Driver.Budget reason -> Alcotest.failf "overpowered adversary found no violation (%s)" reason

(* ----- mc-vs-chaos cross-check ----- *)

let test_chaos_invariants_cross_check () =
  (* The chaos runner evaluates the same invariant set on the same n=4
     config the model checker explores; single-compartment plans must be
     as clean under randomized schedules as under exhaustive ones. *)
  let base =
    { Chaos.seed = 5L;
      crash_host = None;
      crash_delay_us = 50_000.0;
      restart = false;
      byz_enclave = None;
      drop_prob = 0.0 }
  in
  check Alcotest.(option string) "no-fault clean" None (Chaos.run_splitbft base);
  check Alcotest.(option string) "byz preparation contained" None
    (Chaos.run_splitbft { base with Chaos.byz_enclave = Some (0, Splitbft_types.Ids.Preparation) });
  check Alcotest.(option string) "byz execution contained" None
    (Chaos.run_splitbft { base with Chaos.byz_enclave = Some (2, Splitbft_types.Ids.Execution) });
  check Alcotest.(option string) "pbft baseline clean" None (Chaos.run_pbft base);
  check Alcotest.bool "protocol dispatch" true (Result.is_error (Chaos.run ~protocol:"raft" base))

(* ----- Mutation self-test ----- *)

let mutation_budget = { Driver.max_states = 4_000; max_depth = 200; max_wall_s = 120.0 }

let mutation_cfg mutate =
  { World.default_config with
    World.lossy_viewchange = true;
    mutate_viewchange = mutate;
    budgets = World.viewchange_budgets }

let test_mutation_caught () =
  (* Re-introduce the PR-3 bug (prepared certificates dropped at view
     entry) and the DFS must find an agreement violation within budget. *)
  let r = Driver.run ~budget:mutation_budget (mutation_cfg true) in
  match r.Driver.outcome with
  | Driver.Violation { schedule; detail } ->
    check Alcotest.bool "agreement-flavored violation" true (String.length detail > 0);
    (match Driver.replay (mutation_cfg true) schedule with
    | `Violation _ -> ()
    | `Clean | `Diverged _ -> Alcotest.fail "mutation counterexample did not replay")
  | Driver.Exhausted -> Alcotest.fail "mutated view change not caught (exhausted)"
  | Driver.Budget reason -> Alcotest.failf "mutated view change not caught within budget (%s)" reason

let test_mutation_control_clean () =
  (* Same lossy schedule space without the mutation: must stay clean, or
     the self-test would prove nothing. *)
  no_violation "mutation-control" (mutation_cfg false)

let suites =
  [ ( "mc-units",
      [ Alcotest.test_case "engine controlled mode" `Quick test_engine_controlled;
        Alcotest.test_case "agreement edge cases" `Quick test_agreement_edge_cases;
        Alcotest.test_case "ledger prefix gap" `Quick test_prefix_gap;
        Alcotest.test_case "adversary vocabulary" `Quick test_adversary_parse;
        Alcotest.test_case "schedule artifact round-trip" `Quick test_schedule_round_trip ] );
    ( "mc-checker",
      [ Alcotest.test_case "world is schedule-deterministic" `Quick test_world_deterministic;
        Alcotest.test_case "no-fault bounded run clean" `Quick test_no_fault_clean;
        Alcotest.test_case "small scope exhausts (per-host granularity)" `Slow
          test_small_scope_exhausts;
        Alcotest.test_case "single byzantine compartment contained" `Slow
          test_single_compartment_contained;
        Alcotest.test_case "overpowered adversary yields replayable counterexample" `Quick
          test_overpowered_counterexample;
        Alcotest.test_case "chaos runner checks mc invariants" `Slow
          test_chaos_invariants_cross_check;
        Alcotest.test_case "mutation: dropped view-change certs caught" `Slow
          test_mutation_caught;
        Alcotest.test_case "mutation control stays clean" `Slow test_mutation_control_clean ] ) ]
