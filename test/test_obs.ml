module Registry = Splitbft_obs.Registry
module Json = Splitbft_obs.Json
module Span = Splitbft_obs.Span
module Engine = Splitbft_sim.Engine
module H = Splitbft_harness

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))
let checks = Alcotest.(check string)

(* ----- counters / gauges / histograms ----- *)

let test_counter_basics () =
  let r = Registry.create () in
  let c = Registry.counter r "c" in
  checkf "starts at zero" 0.0 (Registry.counter_value c);
  Registry.incr c;
  Registry.add c 4;
  Registry.add_f c 0.5;
  checkf "accumulates" 5.5 (Registry.counter_value c);
  let c' = Registry.counter r "c" in
  Registry.incr c';
  checkf "same name is the same cell" 6.5 (Registry.counter_value c)

let test_labels_identity () =
  let r = Registry.create () in
  let a = Registry.counter r ~labels:[ ("x", "1"); ("y", "2") ] "c" in
  let b = Registry.counter r ~labels:[ ("y", "2"); ("x", "1") ] "c" in
  let other = Registry.counter r ~labels:[ ("x", "9") ] "c" in
  Registry.incr a;
  checkf "label order does not matter" 1.0 (Registry.counter_value b);
  checkf "different labels, different cell" 0.0 (Registry.counter_value other)

let test_kind_clash_rejected () =
  let r = Registry.create () in
  ignore (Registry.counter r "m");
  Alcotest.check_raises "counter vs gauge clash"
    (Invalid_argument "Registry: m already registered as a counter")
    (fun () -> ignore (Registry.gauge r "m"))

let test_gauge_last_write_wins () =
  let r = Registry.create () in
  let g = Registry.gauge r "g" in
  Registry.set g 3.0;
  Registry.set g 7.5;
  checkf "last write" 7.5 (Registry.gauge_value g)

let test_histogram_buckets () =
  let r = Registry.create () in
  let h = Registry.histogram r ~buckets:[ 1.0; 10.0; 100.0 ] "h" in
  List.iter (Registry.observe h) [ 0.5; 5.0; 50.0; 500.0 ];
  checki "count" 4 (Registry.histogram_count h);
  checkf "sum" 555.5 (Registry.histogram_sum h);
  (* Bucket counts only appear in the snapshot; one observation landed in
     each of le=1, le=10, le=100 and the implicit +inf bucket. *)
  match Json.member "metrics" (Registry.to_json r) with
  | Some (Json.List [ m ]) ->
    (match Json.member "buckets" m with
    | Some (Json.List buckets) ->
      checki "bucket slots" 4 (List.length buckets);
      List.iter
        (fun b ->
          match Json.member "count" b with
          | Some (Json.Int n) -> checki "one observation per bucket" 1 n
          | _ -> Alcotest.fail "bucket without count")
        buckets
    | _ -> Alcotest.fail "histogram snapshot has no buckets")
  | _ -> Alcotest.fail "expected exactly one metric"

let test_sum_and_read () =
  let r = Registry.create () in
  Registry.add (Registry.counter r ~labels:[ ("i", "0") ] "tee.ecalls") 3;
  Registry.add (Registry.counter r ~labels:[ ("i", "1") ] "tee.ecalls") 4;
  Registry.incr (Registry.counter r "tee.ecalls_aborted");
  checkf "prefix sums every match" 8.0 (Registry.sum r ~prefix:"tee.ecalls");
  checkf "narrower prefix" 8.0 (Registry.sum r ~prefix:"tee.");
  checkf "no match" 0.0 (Registry.sum r ~prefix:"net.");
  (match Registry.read r ~labels:[ ("i", "1") ] "tee.ecalls" with
  | Some v -> checkf "read one" 4.0 v
  | None -> Alcotest.fail "read missed");
  checkb "read miss" true (Registry.read r "nope" = None)

(* ----- spans against the simulated clock ----- *)

let test_span_simulated_clock () =
  let e = Engine.create () in
  let h = Registry.histogram (Engine.obs e) "stage_us" in
  ignore
    (Engine.schedule e ~delay:10.0 ~label:"open" (fun () ->
         let span = Span.start h ~at:(Engine.now e) in
         ignore
           (Engine.schedule e ~delay:32.5 ~label:"close" (fun () ->
                checkf "elapsed mid-flight" 32.5 (Span.elapsed span ~at:(Engine.now e));
                checkf "recorded duration" 32.5 (Span.finish span ~at:(Engine.now e))))));
  Engine.run e;
  checki "one observation" 1 (Registry.histogram_count h);
  checkf "histogram sum is the span" 32.5 (Registry.histogram_sum h)

(* ----- JSON ----- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [ ("s", Json.Str "a\"b\\c\n\t\x01é");
        ("i", Json.Int (-42));
        ("f", Json.Float 3.25);
        ("tiny", Json.Float 1.2345678901234e-7);
        ("nan", Json.Float Float.nan);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Obj []; Json.List [] ]) ]
  in
  let s = Json.to_string doc in
  match Json.parse s with
  | Error e -> Alcotest.fail ("reparse failed: " ^ e)
  | Ok doc' ->
    (* nan encodes as null, so compare against the expectation. *)
    let expected =
      Json.Obj
        [ ("s", Json.Str "a\"b\\c\n\t\x01é");
          ("i", Json.Int (-42));
          ("f", Json.Float 3.25);
          ("tiny", Json.Float 1.2345678901234e-7);
          ("nan", Json.Null);
          ("b", Json.Bool true);
          ("n", Json.Null);
          ("l", Json.List [ Json.Int 1; Json.Obj []; Json.List [] ]) ]
    in
    checkb "round-trips" true (Json.equal doc' expected)

let test_json_parse_errors () =
  List.iter
    (fun s -> checkb ("rejects " ^ s) true (Result.is_error (Json.parse s)))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"\\x\""; "nul" ]

let test_registry_snapshot_roundtrip () =
  let r = Registry.create () in
  Registry.add (Registry.counter r ~labels:[ ("replica", "0") ] "tee.ecalls") 17;
  Registry.set (Registry.gauge r "g") 2.5;
  Registry.observe (Registry.histogram r ~buckets:[ 10.0 ] "h") 3.0;
  Splitbft_util.Stats.add (Registry.summary r "lat") 5.0;
  let s = Registry.to_json_string r in
  match Json.parse s with
  | Error e -> Alcotest.fail ("snapshot reparse failed: " ^ e)
  | Ok doc ->
    checkb "snapshot self-equal" true (Json.equal doc (Registry.to_json r));
    (match Json.member "schema" doc with
    | Some (Json.Str schema) -> checks "schema tag" "splitbft.metrics/v1" schema
    | _ -> Alcotest.fail "missing schema");
    (match Json.member "metrics" doc with
    | Some (Json.List ms) -> checki "four metrics" 4 (List.length ms)
    | _ -> Alcotest.fail "missing metrics")

(* ----- end-to-end: a cluster run populates the registry ----- *)

let test_cluster_run_populates_metrics () =
  let params =
    { (H.Cluster.default_params Splitbft_proto.Proto_splitbft.protocol) with H.Cluster.seed = 5L }
  in
  let cluster = H.Cluster.create params in
  let spec =
    { H.Workload.default_spec with
      H.Workload.clients = 2;
      warmup_us = 20_000.0;
      duration_us = 100_000.0 }
  in
  let res = H.Workload.run cluster spec in
  checkb "work happened" true (res.H.Workload.completed_total > 0);
  let reg = H.Cluster.obs cluster in
  let pos name = Registry.sum reg ~prefix:name > 0.0 in
  checkb "enclave transitions counted" true (pos "tee.ecalls");
  checkb "copied bytes counted" true (pos "tee.copy_bytes");
  checkb "network bytes counted" true (pos "net.bytes_sent");
  checkb "per-link traffic counted" true (pos "net.link.bytes");
  checkb "broker batches counted" true (pos "broker.batches");
  checkb "broker ecalls counted" true (pos "broker.ecalls");
  checkb "resource busy time counted" true (pos "resource.busy_us");
  (* Each replica's preparation enclave reports under its own label. *)
  List.iteri
    (fun i _ ->
      match
        Registry.read reg
          ~labels:[ ("enclave", Printf.sprintf "replica%d-preparation" i) ]
          "tee.ecalls"
      with
      | Some v -> checkb (Printf.sprintf "replica %d transitions" i) true (v > 0.0)
      | None -> Alcotest.fail (Printf.sprintf "replica %d has no tee.ecalls" i))
    (H.Cluster.nodes cluster);
  (* The latency summary snapshot carries interpolated percentiles. *)
  match Json.member "metrics" (Registry.to_json reg) with
  | Some (Json.List ms) ->
    let is_latency m =
      match Json.member "name" m with
      | Some (Json.Str "workload.latency_us") -> true
      | _ -> false
    in
    (match List.find_opt is_latency ms with
    | None -> Alcotest.fail "no workload.latency_us summary in snapshot"
    | Some m ->
      let field k =
        match Json.member k m with
        | Some (Json.Float v) -> v
        | Some (Json.Int v) -> float_of_int v
        | _ -> Alcotest.failf "latency summary lacks %s" k
      in
      checkb "p50 <= p99" true (field "p50" <= field "p99");
      checkb "count positive" true (field "count" > 0.0))
  | _ -> Alcotest.fail "snapshot has no metrics list"

(* ----- flight recorder ----- *)

module Flight = Splitbft_obs.Flight

let test_flight_ring_and_roundtrip () =
  let fl = Flight.create ~capacity:4 () in
  let heard = ref 0 in
  Flight.on_event fl (fun (_ : Flight.event) -> incr heard);
  for i = 1 to 7 do
    Flight.record fl ~at:(float_of_int i) ~host:(i mod 3) ~kind:"ecall"
      ~detail:(Printf.sprintf "op %d\nwith newline" i)
  done;
  checki "listener saw every record" 7 !heard;
  checki "ring keeps the newest capacity" 4 (List.length (Flight.events fl));
  checki "recorded counts evictions" 7 (Flight.recorded fl);
  checki "dropped = recorded - retained" 3 (Flight.dropped fl);
  (match Flight.events fl with
  | first :: _ -> checkf "oldest retained is #4" 4.0 first.Flight.at
  | [] -> Alcotest.fail "empty ring");
  (* artifact round-trip, newline-flattened details included *)
  let dump = Flight.to_string fl in
  checkb "artifact carries the header" true
    (String.length dump >= String.length Flight.header
    && String.sub dump 0 (String.length Flight.header) = Flight.header);
  (match Flight.of_string dump with
  | Error e -> Alcotest.fail e
  | Ok events ->
    checki "parses every retained event" 4 (List.length events);
    List.iter2
      (fun (a : Flight.event) (b : Flight.event) ->
        checkf "at survives" a.Flight.at b.Flight.at;
        checki "host survives" a.Flight.host b.Flight.host;
        checks "kind survives" a.Flight.kind b.Flight.kind;
        checkb "detail is newline-free" true
          (not (String.contains b.Flight.detail '\n')))
      (Flight.events fl) events);
  Flight.clear fl;
  checki "clear empties the ring" 0 (List.length (Flight.events fl));
  Flight.record fl ~at:9.0 ~host:0 ~kind:"k" ~detail:"";
  checki "listeners survive clear" 8 !heard

let test_flight_rejects_garbage () =
  List.iter
    (fun s -> checkb ("rejects " ^ String.escaped s) true (Result.is_error (Flight.of_string s)))
    [ ""; "not-a-flight"; "splitbft-flight v2"; Flight.header ^ "\nevent nan" ]

(* ----- health sampler ----- *)

module Health = Splitbft_obs.Health

let test_health_window_queries () =
  let r = Registry.create () in
  let c = Registry.counter r ~labels:[ ("replica", "0") ] "broker.ecalls" in
  let h = Health.create ~window:3 r in
  (* empty and single-sample windows answer None, never nan *)
  checkb "no sample: latest None" true (Health.latest h "broker.ecalls" = None);
  Registry.add c 10;
  Health.sample h ~at:0.0;
  checkb "one sample: delta None" true
    (Health.delta h ~labels:[ ("replica", "0") ] "broker.ecalls" = None);
  checkb "one sample: span None" true (Health.span_us h = None);
  Registry.add c 5;
  Health.sample h ~at:1_000_000.0;
  checkf "delta over window" 5.0
    (Option.get (Health.delta h ~labels:[ ("replica", "0") ] "broker.ecalls"));
  checkf "rate per second" 5.0
    (Option.get (Health.rate h ~labels:[ ("replica", "0") ] "broker.ecalls"));
  (* the window slides: after 3 more samples the t=0 snapshot is gone *)
  Registry.add c 1;
  Health.sample h ~at:2_000_000.0;
  Registry.add c 1;
  Health.sample h ~at:3_000_000.0;
  checki "window bound" 3 (Health.samples h);
  checkf "delta excludes evicted samples" 2.0
    (Option.get (Health.delta h ~labels:[ ("replica", "0") ] "broker.ecalls"));
  checkb "absent metric is None" true (Health.delta h "no.such.metric" = None);
  checkf "prefix sum" 2.0 (Option.get (Health.delta_sum h ~prefix:"broker."));
  (* a metric registered after the oldest snapshot has no baseline *)
  let late = Registry.counter r "late.counter" in
  Registry.incr late;
  checkb "late metric: delta None" true (Health.delta h "late.counter" = None)

let test_health_zero_span () =
  let r = Registry.create () in
  ignore (Registry.counter r "c");
  let h = Health.create r in
  Health.sample h ~at:5.0;
  Health.sample h ~at:5.0;
  checkb "zero-span rate is None" true (Health.rate h "c" = None);
  checkf "zero-span delta still answers" 0.0 (Option.get (Health.delta h "c"))

(* ----- prometheus exposition ----- *)

module Prom = Splitbft_obs.Prom

let test_prom_exposition () =
  checks "dots sanitized" "tee_ecalls" (Prom.sanitize_name "tee.ecalls");
  checks "leading digit prefixed" "_9lives" (Prom.sanitize_name "9lives");
  let r = Registry.create () in
  Registry.add (Registry.counter r ~labels:[ ("replica", "0") ] "tee.ecalls") 17;
  Registry.set (Registry.gauge r "queue.depth") 2.5;
  Registry.observe (Registry.histogram r ~buckets:[ 10.0; 100.0 ] "lat.us") 42.0;
  Splitbft_util.Stats.add (Registry.summary r "s") 5.0;
  ignore (Registry.gauge r "never.written");  (* non-finite: must be dropped *)
  let page = Prom.of_registry r in
  let has needle =
    let nl = String.length needle and pl = String.length page in
    let rec go i = i + nl <= pl && (String.sub page i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "counter sample" true (has "tee_ecalls{replica=\"0\"} 17");
  checkb "counter type" true (has "# TYPE tee_ecalls counter");
  checkb "gauge sample" true (has "queue_depth 2.5");
  checkb "histogram bucket" true (has "lat_us_bucket{le=\"100\"} 1");
  checkb "histogram +Inf" true (has "le=\"+Inf\"");
  checkb "histogram count" true (has "lat_us_count 1");
  checkb "summary quantile" true (has "s{quantile=");
  checkb "no NaN leaks" true (not (has "NaN") && not (has "nan"));
  checkb "every line is sample or comment" true
    (String.split_on_char '\n' page
    |> List.for_all (fun l -> l = "" || l.[0] = '#' || String.contains l ' '))

(* ----- empty-window stats guards ----- *)

module Stats = Splitbft_util.Stats

let test_stats_empty_guards () =
  let s = Stats.create () in
  checkb "empty" true (Stats.is_empty s);
  checkb "mean_opt None" true (Stats.mean_opt s = None);
  checkb "min_opt None" true (Stats.min_opt s = None);
  checkb "max_opt None" true (Stats.max_opt s = None);
  checkb "percentile_opt None" true (Stats.percentile_opt s 99.0 = None);
  checkf "percentile_or0" 0.0 (Stats.percentile_or0 s 99.0);
  checkf "mean_or0" 0.0 (Stats.mean_or0 s);
  Stats.add s 7.0;
  checkb "single sample" false (Stats.is_empty s);
  checkf "single-sample percentile is the sample" 7.0 (Option.get (Stats.percentile_opt s 50.0));
  checkf "single-sample p99 is the sample" 7.0 (Option.get (Stats.percentile_opt s 99.0));
  checkf "single-sample mean" 7.0 (Option.get (Stats.mean_opt s))

let suites =
  [ ( "obs",
      [ Alcotest.test_case "counter basics" `Quick test_counter_basics;
        Alcotest.test_case "label identity" `Quick test_labels_identity;
        Alcotest.test_case "kind clash" `Quick test_kind_clash_rejected;
        Alcotest.test_case "gauge" `Quick test_gauge_last_write_wins;
        Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
        Alcotest.test_case "sum and read" `Quick test_sum_and_read;
        Alcotest.test_case "span vs simulated clock" `Quick test_span_simulated_clock;
        Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
        Alcotest.test_case "snapshot roundtrip" `Quick test_registry_snapshot_roundtrip;
        Alcotest.test_case "cluster run populates metrics" `Quick
          test_cluster_run_populates_metrics;
        Alcotest.test_case "flight ring and roundtrip" `Quick test_flight_ring_and_roundtrip;
        Alcotest.test_case "flight rejects garbage" `Quick test_flight_rejects_garbage;
        Alcotest.test_case "health window queries" `Quick test_health_window_queries;
        Alcotest.test_case "health zero span" `Quick test_health_zero_span;
        Alcotest.test_case "prom exposition" `Quick test_prom_exposition;
        Alcotest.test_case "stats empty guards" `Quick test_stats_empty_guards ] ) ]
