module Registry = Splitbft_obs.Registry
module Json = Splitbft_obs.Json
module Span = Splitbft_obs.Span
module Engine = Splitbft_sim.Engine
module H = Splitbft_harness

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))
let checks = Alcotest.(check string)

(* ----- counters / gauges / histograms ----- *)

let test_counter_basics () =
  let r = Registry.create () in
  let c = Registry.counter r "c" in
  checkf "starts at zero" 0.0 (Registry.counter_value c);
  Registry.incr c;
  Registry.add c 4;
  Registry.add_f c 0.5;
  checkf "accumulates" 5.5 (Registry.counter_value c);
  let c' = Registry.counter r "c" in
  Registry.incr c';
  checkf "same name is the same cell" 6.5 (Registry.counter_value c)

let test_labels_identity () =
  let r = Registry.create () in
  let a = Registry.counter r ~labels:[ ("x", "1"); ("y", "2") ] "c" in
  let b = Registry.counter r ~labels:[ ("y", "2"); ("x", "1") ] "c" in
  let other = Registry.counter r ~labels:[ ("x", "9") ] "c" in
  Registry.incr a;
  checkf "label order does not matter" 1.0 (Registry.counter_value b);
  checkf "different labels, different cell" 0.0 (Registry.counter_value other)

let test_kind_clash_rejected () =
  let r = Registry.create () in
  ignore (Registry.counter r "m");
  Alcotest.check_raises "counter vs gauge clash"
    (Invalid_argument "Registry: m already registered as a counter")
    (fun () -> ignore (Registry.gauge r "m"))

let test_gauge_last_write_wins () =
  let r = Registry.create () in
  let g = Registry.gauge r "g" in
  Registry.set g 3.0;
  Registry.set g 7.5;
  checkf "last write" 7.5 (Registry.gauge_value g)

let test_histogram_buckets () =
  let r = Registry.create () in
  let h = Registry.histogram r ~buckets:[ 1.0; 10.0; 100.0 ] "h" in
  List.iter (Registry.observe h) [ 0.5; 5.0; 50.0; 500.0 ];
  checki "count" 4 (Registry.histogram_count h);
  checkf "sum" 555.5 (Registry.histogram_sum h);
  (* Bucket counts only appear in the snapshot; one observation landed in
     each of le=1, le=10, le=100 and the implicit +inf bucket. *)
  match Json.member "metrics" (Registry.to_json r) with
  | Some (Json.List [ m ]) ->
    (match Json.member "buckets" m with
    | Some (Json.List buckets) ->
      checki "bucket slots" 4 (List.length buckets);
      List.iter
        (fun b ->
          match Json.member "count" b with
          | Some (Json.Int n) -> checki "one observation per bucket" 1 n
          | _ -> Alcotest.fail "bucket without count")
        buckets
    | _ -> Alcotest.fail "histogram snapshot has no buckets")
  | _ -> Alcotest.fail "expected exactly one metric"

let test_sum_and_read () =
  let r = Registry.create () in
  Registry.add (Registry.counter r ~labels:[ ("i", "0") ] "tee.ecalls") 3;
  Registry.add (Registry.counter r ~labels:[ ("i", "1") ] "tee.ecalls") 4;
  Registry.incr (Registry.counter r "tee.ecalls_aborted");
  checkf "prefix sums every match" 8.0 (Registry.sum r ~prefix:"tee.ecalls");
  checkf "narrower prefix" 8.0 (Registry.sum r ~prefix:"tee.");
  checkf "no match" 0.0 (Registry.sum r ~prefix:"net.");
  (match Registry.read r ~labels:[ ("i", "1") ] "tee.ecalls" with
  | Some v -> checkf "read one" 4.0 v
  | None -> Alcotest.fail "read missed");
  checkb "read miss" true (Registry.read r "nope" = None)

(* ----- spans against the simulated clock ----- *)

let test_span_simulated_clock () =
  let e = Engine.create () in
  let h = Registry.histogram (Engine.obs e) "stage_us" in
  ignore
    (Engine.schedule e ~delay:10.0 ~label:"open" (fun () ->
         let span = Span.start h ~at:(Engine.now e) in
         ignore
           (Engine.schedule e ~delay:32.5 ~label:"close" (fun () ->
                checkf "elapsed mid-flight" 32.5 (Span.elapsed span ~at:(Engine.now e));
                checkf "recorded duration" 32.5 (Span.finish span ~at:(Engine.now e))))));
  Engine.run e;
  checki "one observation" 1 (Registry.histogram_count h);
  checkf "histogram sum is the span" 32.5 (Registry.histogram_sum h)

(* ----- JSON ----- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [ ("s", Json.Str "a\"b\\c\n\t\x01é");
        ("i", Json.Int (-42));
        ("f", Json.Float 3.25);
        ("tiny", Json.Float 1.2345678901234e-7);
        ("nan", Json.Float Float.nan);
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.Obj []; Json.List [] ]) ]
  in
  let s = Json.to_string doc in
  match Json.parse s with
  | Error e -> Alcotest.fail ("reparse failed: " ^ e)
  | Ok doc' ->
    (* nan encodes as null, so compare against the expectation. *)
    let expected =
      Json.Obj
        [ ("s", Json.Str "a\"b\\c\n\t\x01é");
          ("i", Json.Int (-42));
          ("f", Json.Float 3.25);
          ("tiny", Json.Float 1.2345678901234e-7);
          ("nan", Json.Null);
          ("b", Json.Bool true);
          ("n", Json.Null);
          ("l", Json.List [ Json.Int 1; Json.Obj []; Json.List [] ]) ]
    in
    checkb "round-trips" true (Json.equal doc' expected)

let test_json_parse_errors () =
  List.iter
    (fun s -> checkb ("rejects " ^ s) true (Result.is_error (Json.parse s)))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"\\x\""; "nul" ]

let test_registry_snapshot_roundtrip () =
  let r = Registry.create () in
  Registry.add (Registry.counter r ~labels:[ ("replica", "0") ] "tee.ecalls") 17;
  Registry.set (Registry.gauge r "g") 2.5;
  Registry.observe (Registry.histogram r ~buckets:[ 10.0 ] "h") 3.0;
  Splitbft_util.Stats.add (Registry.summary r "lat") 5.0;
  let s = Registry.to_json_string r in
  match Json.parse s with
  | Error e -> Alcotest.fail ("snapshot reparse failed: " ^ e)
  | Ok doc ->
    checkb "snapshot self-equal" true (Json.equal doc (Registry.to_json r));
    (match Json.member "schema" doc with
    | Some (Json.Str schema) -> checks "schema tag" "splitbft.metrics/v1" schema
    | _ -> Alcotest.fail "missing schema");
    (match Json.member "metrics" doc with
    | Some (Json.List ms) -> checki "four metrics" 4 (List.length ms)
    | _ -> Alcotest.fail "missing metrics")

(* ----- end-to-end: a cluster run populates the registry ----- *)

let test_cluster_run_populates_metrics () =
  let params =
    { (H.Cluster.default_params Splitbft_proto.Proto_splitbft.protocol) with H.Cluster.seed = 5L }
  in
  let cluster = H.Cluster.create params in
  let spec =
    { H.Workload.default_spec with
      H.Workload.clients = 2;
      warmup_us = 20_000.0;
      duration_us = 100_000.0 }
  in
  let res = H.Workload.run cluster spec in
  checkb "work happened" true (res.H.Workload.completed_total > 0);
  let reg = H.Cluster.obs cluster in
  let pos name = Registry.sum reg ~prefix:name > 0.0 in
  checkb "enclave transitions counted" true (pos "tee.ecalls");
  checkb "copied bytes counted" true (pos "tee.copy_bytes");
  checkb "network bytes counted" true (pos "net.bytes_sent");
  checkb "per-link traffic counted" true (pos "net.link.bytes");
  checkb "broker batches counted" true (pos "broker.batches");
  checkb "broker ecalls counted" true (pos "broker.ecalls");
  checkb "resource busy time counted" true (pos "resource.busy_us");
  (* Each replica's preparation enclave reports under its own label. *)
  List.iteri
    (fun i _ ->
      match
        Registry.read reg
          ~labels:[ ("enclave", Printf.sprintf "replica%d-preparation" i) ]
          "tee.ecalls"
      with
      | Some v -> checkb (Printf.sprintf "replica %d transitions" i) true (v > 0.0)
      | None -> Alcotest.fail (Printf.sprintf "replica %d has no tee.ecalls" i))
    (H.Cluster.nodes cluster);
  (* The latency summary snapshot carries interpolated percentiles. *)
  match Json.member "metrics" (Registry.to_json reg) with
  | Some (Json.List ms) ->
    let is_latency m =
      match Json.member "name" m with
      | Some (Json.Str "workload.latency_us") -> true
      | _ -> false
    in
    (match List.find_opt is_latency ms with
    | None -> Alcotest.fail "no workload.latency_us summary in snapshot"
    | Some m ->
      let field k =
        match Json.member k m with
        | Some (Json.Float v) -> v
        | Some (Json.Int v) -> float_of_int v
        | _ -> Alcotest.failf "latency summary lacks %s" k
      in
      checkb "p50 <= p99" true (field "p50" <= field "p99");
      checkb "count positive" true (field "count" > 0.0))
  | _ -> Alcotest.fail "snapshot has no metrics list"

let suites =
  [ ( "obs",
      [ Alcotest.test_case "counter basics" `Quick test_counter_basics;
        Alcotest.test_case "label identity" `Quick test_labels_identity;
        Alcotest.test_case "kind clash" `Quick test_kind_clash_rejected;
        Alcotest.test_case "gauge" `Quick test_gauge_last_write_wins;
        Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
        Alcotest.test_case "sum and read" `Quick test_sum_and_read;
        Alcotest.test_case "span vs simulated clock" `Quick test_span_simulated_clock;
        Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "json parse errors" `Quick test_json_parse_errors;
        Alcotest.test_case "snapshot roundtrip" `Quick test_registry_snapshot_roundtrip;
        Alcotest.test_case "cluster run populates metrics" `Quick
          test_cluster_run_populates_metrics ] ) ]
