(* Open-loop workload generation and per-client keyed RNG streams.

   The generator's trace is a pure function of (seed, app, spec): the
   fingerprint pin below is the regression net for reproducible workload
   generation, and the connection-count independence tests guard the keyed
   derivation (seed, client-id) -> stream that replaced splitting a shared
   engine generator — with a shared generator, creating one more client
   perturbed every other client's nonces and the whole trace. *)

module H = Splitbft_harness
module Cluster = H.Cluster
module Workload = H.Workload
module Open_loop = H.Workload.Open_loop
module Proto = Splitbft_proto
module Client = Splitbft_client.Client
module Network = Splitbft_sim.Network
module Addr = Splitbft_types.Addr
module Zipf = Splitbft_util.Zipf
module Rng = Splitbft_util.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ----- pure generator ----- *)

(* Pinned trace digest: first 256 arrivals at seed 42 under the default
   spec.  Any change to arrival scheduling, identity selection, key
   skew or op encoding must be deliberate enough to update this pin. *)
let pinned_fingerprint = "361cde4e98579bfa8540dba4e8529b29"

let test_fingerprint_pin () =
  checks "trace fingerprint"
    pinned_fingerprint
    (Open_loop.fingerprint ~seed:42L Open_loop.default_spec ~n:256)

let test_fingerprint_ignores_connections () =
  (* The virtual trace exists before any deployment decision: multiplexing
     over 4 or 64 connections must not change a byte of it. *)
  let fp spec = Open_loop.fingerprint ~seed:7L spec ~n:128 in
  let base = Open_loop.default_spec in
  checks "connections do not perturb the trace" (fp base)
    (fp { base with Open_loop.connections = 64; window = 64 });
  (* ... but the workload knobs do. *)
  checkb "read mix changes the trace" true
    (fp base <> fp { base with Open_loop.read_ratio = 0.0 })

let test_identity_lru_bound () =
  (* Satellite: ~1M simulated identities over a 4096-entry cache; live
     state and its reachable bytes stay under a fixed bound while the
     identity space is three orders of magnitude larger. *)
  let spec =
    { Open_loop.default_spec with
      Open_loop.identities = 1_000_000;
      identity_cache = 4_096 }
  in
  let g = Open_loop.gen ~seed:9L spec in
  let draws = 300_000 in
  for _ = 1 to draws do
    let identity, op, _expect = Open_loop.next g in
    assert (identity >= 0 && identity < 1_000_000);
    assert (String.length op > 0)
  done;
  checkb "live identities bounded" true (Open_loop.live_identities g <= 4_096);
  checkb "live peak bounded" true (Open_loop.live_identities_peak g <= 4_096);
  checkb "identity space actually explored" true
    (Open_loop.distinct_identities g > 200_000);
  let bytes = Open_loop.identity_words g * (Sys.word_size / 8) in
  checkb
    (Printf.sprintf "identity table stays under 4 MB (is %d bytes)" bytes)
    true (bytes <= 4 * 1024 * 1024)

let test_eviction_restarts_deterministically () =
  (* Bounded memory means an evicted identity that returns restarts its
     stream (fresh-session semantics).  The restarted stream must be the
     same one the identity started with — a pure function of
     (seed, identity), never of eviction history or cache size. *)
  let base =
    { Open_loop.default_spec with Open_loop.identities = 1; identity_cache = 8 }
  in
  (* Identity 0's first op in a never-evicting generator. *)
  let g0 = Open_loop.gen ~seed:3L base in
  let _, first_op, _ = Open_loop.next g0 in
  (* Cache of 1 over two identities: every switch back to identity 0
     re-admits it. *)
  let g =
    Open_loop.gen ~seed:3L { base with Open_loop.identities = 2; identity_cache = 1 }
  in
  let prev = ref (-1) in
  let readmissions = ref 0 in
  for _ = 1 to 256 do
    let id, op, _ = Open_loop.next g in
    if id = 0 && !prev <> 0 then begin
      incr readmissions;
      checks "re-admitted identity restarts its keyed stream" first_op op
    end;
    prev := id
  done;
  checkb "re-admission exercised" true (!readmissions >= 2)

let test_bursty_validation () =
  let bad shape =
    match Open_loop.gen ~seed:1L { Open_loop.default_spec with Open_loop.arrival = shape } with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  checkb "peak_factor * duty >= 1 rejected" true
    (bad (Open_loop.Bursty { peak_factor = 5.0; period_us = 1e5; duty = 0.2 }));
  checkb "duty out of range rejected" true
    (bad (Open_loop.Bursty { peak_factor = 2.0; period_us = 1e5; duty = 1.0 }));
  checkb "valid bursty accepted" true
    (not (bad (Open_loop.Bursty { peak_factor = 4.0; period_us = 1e5; duty = 0.2 })))

let test_interarrival_positive () =
  let g = Open_loop.gen ~seed:5L Open_loop.default_spec in
  for i = 0 to 999 do
    let gap = Open_loop.interarrival g ~now:(float_of_int i *. 137.0) in
    assert (Float.is_finite gap && gap >= 0.0)
  done

(* ----- Zipf sampling ----- *)

let test_zipf_skew () =
  let z = Zipf.create ~s:0.99 ~n:1024 () in
  let rng = Rng.create 11L in
  let counts = Array.make 1024 0 in
  for _ = 1 to 20_000 do
    let k = Zipf.sample z rng in
    assert (k >= 0 && k < 1024);
    counts.(k) <- counts.(k) + 1
  done;
  let tail = Array.fold_left ( + ) 0 (Array.sub counts 512 512) in
  checkb "head key is hot" true (counts.(0) > 20_000 / 100);
  checkb "tail half is cold" true (tail < 20_000 / 4);
  (* s = 0 degenerates to uniform: the head loses its advantage. *)
  let u = Zipf.create ~s:0.0 ~n:1024 () in
  let urng = Rng.create 11L in
  let ucounts = Array.make 1024 0 in
  for _ = 1 to 20_000 do
    let k = Zipf.sample u urng in
    ucounts.(k) <- ucounts.(k) + 1
  done;
  checkb "uniform head is not hot" true (ucounts.(0) < 100)

(* ----- per-client keyed RNG streams ----- *)

let first_wire_of_client ~extra ~seed =
  let cluster =
    Cluster.create
      { (Cluster.default_params Proto.Proto_splitbft.protocol) with Cluster.seed = seed }
  in
  let engine = Cluster.engine cluster in
  let net = Cluster.network cluster in
  let mode = Client.Splitbft { ready_quorum = 4 } in
  (* A bystander client created first: with a shared split-chain RNG this
     shifted every later client's stream; with keyed streams it is inert. *)
  if extra then ignore (Client.create engine net (Client.default_config mode ~n:4 ~id:9));
  let cl = Client.create engine net (Client.default_config mode ~n:4 ~id:5) in
  let captured = ref None in
  Network.set_tap net
    (Some
       (fun ~src ~dst:_ payload ->
         if !captured = None && src = Addr.client 5 then captured := Some payload));
  Client.start cl ~on_ready:(fun () -> ());
  Cluster.run cluster ~until_us:100_000.0;
  match !captured with
  | Some p -> p
  | None -> Alcotest.fail "client 5 sent nothing"

let test_client_stream_keyed () =
  checks "client 5's first wire bytes ignore bystander creation"
    (first_wire_of_client ~extra:false ~seed:31L)
    (first_wire_of_client ~extra:true ~seed:31L)

(* ----- end-to-end open-loop runs ----- *)

let small_spec =
  { Open_loop.default_spec with
    Open_loop.rate_ops = 2_000.0;
    warmup_us = 100_000.0;
    duration_us = 400_000.0;
    connections = 4;
    window = 8;
    identities = 10_000;
    identity_cache = 512 }

let run_small arrival =
  let cluster =
    Cluster.create
      { (Cluster.default_params Proto.Proto_splitbft.protocol) with Cluster.seed = 5L }
  in
  Open_loop.run cluster { small_spec with Open_loop.arrival }

let test_openloop_poisson_run () =
  let r = run_small Open_loop.Poisson in
  checkb "arrivals happened" true (r.Open_loop.arrivals > 0);
  checki "no wrong results" 0 r.Open_loop.ol_wrong_results;
  (* Far below saturation: the system keeps up with the offered load. *)
  checkb "achieved tracks offered" true
    (r.Open_loop.achieved_ops >= 0.75 *. r.Open_loop.offered_ops);
  checkb "latency percentiles ordered" true
    (r.Open_loop.ol_p50_latency_us <= r.Open_loop.ol_p95_latency_us
    && r.Open_loop.ol_p95_latency_us <= r.Open_loop.ol_p99_latency_us);
  checkb "p50 finite" true (Float.is_finite r.Open_loop.ol_p50_latency_us);
  checkb "identity cache bounded" true (r.Open_loop.live_identities_peak <= 512)

let test_openloop_bursty_run () =
  let r =
    run_small (Open_loop.Bursty { peak_factor = 4.0; period_us = 50_000.0; duty = 0.2 })
  in
  checkb "arrivals happened" true (r.Open_loop.arrivals > 0);
  checki "no wrong results" 0 r.Open_loop.ol_wrong_results;
  (* The square wave preserves the configured mean rate. *)
  checkb "offered close to the configured mean" true
    (Float.abs (r.Open_loop.offered_ops -. 2_000.0) <= 600.0);
  checkb "achieved tracks offered" true
    (r.Open_loop.achieved_ops >= 0.75 *. r.Open_loop.offered_ops)

let suites =
  [ ( "openloop",
      [ Alcotest.test_case "trace fingerprint pinned" `Quick test_fingerprint_pin;
        Alcotest.test_case "trace ignores connection count" `Quick
          test_fingerprint_ignores_connections;
        Alcotest.test_case "identity LRU bound at 1M identities" `Slow
          test_identity_lru_bound;
        Alcotest.test_case "eviction restarts keyed streams" `Quick
          test_eviction_restarts_deterministically;
        Alcotest.test_case "bursty shape validation" `Quick test_bursty_validation;
        Alcotest.test_case "interarrival gaps positive" `Quick test_interarrival_positive;
        Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
        Alcotest.test_case "client rng streams keyed" `Slow test_client_stream_keyed;
        Alcotest.test_case "open-loop poisson run" `Slow test_openloop_poisson_run;
        Alcotest.test_case "open-loop bursty run" `Slow test_openloop_bursty_run ] ) ]
