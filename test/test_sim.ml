module Engine = Splitbft_sim.Engine
module Timer = Splitbft_sim.Timer
module Network = Splitbft_sim.Network
module Resource = Splitbft_sim.Resource
module Trace = Splitbft_sim.Trace

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-6))

(* ----- engine ----- *)

let test_engine_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  let at delay tag = ignore (Engine.schedule e ~delay ~label:tag (fun () -> log := tag :: !log)) in
  at 30.0 "c";
  at 10.0 "a";
  at 20.0 "b";
  Engine.run e;
  Alcotest.(check (list string)) "fired in time order" [ "a"; "b"; "c" ] (List.rev !log);
  checkf "clock at last event" 30.0 (Engine.now e)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    ignore
      (Engine.schedule e ~delay:7.0 ~label:"tie" (fun () -> log := i :: !log))
  done;
  Engine.run e;
  Alcotest.(check (list int)) "ties fire in scheduling order" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e ~delay:5.0 ~label:"x" (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run e;
  checkb "cancelled never fires" false !fired

let test_engine_pending_accounting () =
  let e = Engine.create () in
  checki "starts empty" 0 (Engine.pending e);
  let a = Engine.schedule e ~delay:5.0 ~label:"a" (fun () -> ()) in
  let b = Engine.schedule e ~delay:6.0 ~label:"b" (fun () -> ()) in
  ignore (Engine.schedule e ~delay:7.0 ~label:"c" (fun () -> ()));
  checki "three scheduled" 3 (Engine.pending e);
  Engine.cancel a;
  checki "cancel decrements immediately" 2 (Engine.pending e);
  Engine.cancel a;
  checki "double cancel is idempotent" 2 (Engine.pending e);
  Engine.run e;
  checki "drains to zero" 0 (Engine.pending e);
  (* Cancelling after the event fired must not corrupt the counter. *)
  Engine.cancel b;
  checki "cancel after fire is a no-op" 0 (Engine.pending e)

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:10.0 ~label:"in" (fun () -> incr fired));
  ignore (Engine.schedule e ~delay:100.0 ~label:"out" (fun () -> incr fired));
  Engine.run ~until:50.0 e;
  checki "only events before horizon" 1 !fired;
  checkf "clock advanced to horizon" 50.0 (Engine.now e);
  Engine.run e;
  checki "resumes" 2 !fired

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.schedule e ~delay:1.0 ~label:"outer" (fun () ->
         ignore
           (Engine.schedule e ~delay:2.0 ~label:"inner" (fun () ->
                times := Engine.now e :: !times))));
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "nested at t=3" [ 3.0 ] !times

let test_engine_negative_delay_rejected () =
  let e = Engine.create () in
  checkb "raises" true
    (try
       ignore (Engine.schedule e ~delay:(-1.0) ~label:"bad" (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_engine_stop () =
  let e = Engine.create () in
  let fired = ref 0 in
  ignore (Engine.schedule e ~delay:1.0 ~label:"a" (fun () -> incr fired; raise Engine.Stop));
  ignore (Engine.schedule e ~delay:2.0 ~label:"b" (fun () -> incr fired));
  Engine.run e;
  checki "stopped early" 1 !fired

let test_engine_max_events () =
  let e = Engine.create () in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~delay:(float_of_int i) ~label:"n" (fun () -> ()))
  done;
  Engine.run ~max_events:4 e;
  checki "only 4 processed" 4 (Engine.events_processed e)

(* ----- timer ----- *)

let test_timer_restart () =
  let e = Engine.create () in
  let fired_at = ref nan in
  let t = Timer.create e ~label:"t" ~delay:10.0 ~callback:(fun () -> fired_at := Engine.now e) in
  Timer.start t;
  ignore (Engine.schedule e ~delay:5.0 ~label:"re" (fun () -> Timer.restart t));
  Engine.run e;
  checkf "restart pushed deadline" 15.0 !fired_at

let test_timer_start_idempotent () =
  let e = Engine.create () in
  let count = ref 0 in
  let t = Timer.create e ~label:"t" ~delay:10.0 ~callback:(fun () -> incr count) in
  Timer.start t;
  ignore (Engine.schedule e ~delay:2.0 ~label:"again" (fun () -> Timer.start t));
  Engine.run e;
  checki "fires once" 1 !count

let test_timer_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  let t = Timer.create e ~label:"t" ~delay:10.0 ~callback:(fun () -> incr count) in
  Timer.start t;
  ignore (Engine.schedule e ~delay:3.0 ~label:"stop" (fun () -> Timer.stop t));
  Engine.run e;
  checki "never fires" 0 !count;
  checkb "not running" false (Timer.is_running t)

(* ----- network ----- *)

let quiet_net = { Network.default_config with Network.jitter_mean_us = 0.0 }

let test_network_delivery () =
  let e = Engine.create () in
  let net = Network.create e quiet_net in
  let got = ref [] in
  Network.register net 1 (fun ~src payload -> got := (src, payload) :: !got);
  Network.send net ~src:0 ~dst:1 "hello";
  Engine.run e;
  Alcotest.(check (list (pair int string))) "delivered" [ (0, "hello") ] !got;
  checki "stats sent" 1 (Network.messages_sent net);
  checki "stats delivered" 1 (Network.messages_delivered net)

let test_network_unregistered_dropped () =
  let e = Engine.create () in
  let net = Network.create e quiet_net in
  Network.send net ~src:0 ~dst:9 "void";
  Engine.run e;
  checki "nothing delivered" 0 (Network.messages_delivered net)

let test_network_partition_and_heal () =
  let e = Engine.create () in
  let net = Network.create e quiet_net in
  let got = ref 0 in
  Network.register net 1 (fun ~src:_ _ -> incr got);
  Network.partition net [ [ 0 ]; [ 1 ] ];
  Network.send net ~src:0 ~dst:1 "blocked";
  Engine.run e;
  checki "partitioned" 0 !got;
  Network.heal net;
  Network.send net ~src:0 ~dst:1 "flows";
  Engine.run e;
  checki "healed" 1 !got

let test_network_partition_same_side () =
  let e = Engine.create () in
  let net = Network.create e quiet_net in
  let got = ref 0 in
  Network.register net 1 (fun ~src:_ _ -> incr got);
  Network.partition net [ [ 0; 1 ]; [ 2 ] ];
  Network.send net ~src:0 ~dst:1 "same side";
  Engine.run e;
  checki "same side flows" 1 !got

let test_network_filter () =
  let e = Engine.create () in
  let net = Network.create e quiet_net in
  let got = ref [] in
  Network.register net 1 (fun ~src:_ payload -> got := payload :: !got);
  Network.set_filter net
    (Some (fun ~src:_ ~dst:_ payload -> if payload = "drop-me" then Network.Drop else Network.Deliver));
  Network.send net ~src:0 ~dst:1 "drop-me";
  Network.send net ~src:0 ~dst:1 "keep";
  Engine.run e;
  Alcotest.(check (list string)) "filtered" [ "keep" ] !got

let test_network_filter_delay () =
  let e = Engine.create () in
  let net = Network.create e quiet_net in
  let at = ref nan in
  Network.register net 1 (fun ~src:_ _ -> at := Engine.now e);
  Network.set_filter net (Some (fun ~src:_ ~dst:_ _ -> Network.Delay 1000.0));
  Network.send net ~src:0 ~dst:1 "slow";
  Engine.run e;
  checkb "delayed" true (!at > 1000.0)

let test_network_tap_sees_everything () =
  let e = Engine.create () in
  let net = Network.create e quiet_net in
  let tapped = ref 0 in
  Network.set_tap net (Some (fun ~src:_ ~dst:_ _ -> incr tapped));
  Network.set_filter net (Some (fun ~src:_ ~dst:_ _ -> Network.Drop));
  Network.send net ~src:0 ~dst:1 "x";
  Engine.run e;
  checki "tap sees dropped messages" 1 !tapped

let test_network_drop_probability () =
  let e = Engine.create () in
  let net = Network.create e { quiet_net with Network.drop_probability = 1.0 } in
  let got = ref 0 in
  Network.register net 1 (fun ~src:_ _ -> incr got);
  for _ = 1 to 20 do
    Network.send net ~src:0 ~dst:1 "x"
  done;
  Engine.run e;
  checki "all dropped" 0 !got

let test_network_bandwidth_delay () =
  let e = Engine.create () in
  let cfg =
    { Network.base_delay_us = 10.0;
      jitter_mean_us = 0.0;
      drop_probability = 0.0;
      bandwidth_bytes_per_us = 1.0 }
  in
  let net = Network.create e cfg in
  let at = ref nan in
  Network.register net 1 (fun ~src:_ _ -> at := Engine.now e);
  Network.send net ~src:0 ~dst:1 (String.make 90 'x');
  Engine.run e;
  checkf "base + size/bandwidth" 100.0 !at

(* ----- resource ----- *)

let test_resource_fifo () =
  let e = Engine.create () in
  let r = Resource.create e ~name:"cpu" in
  let done_at = ref [] in
  Resource.submit r ~cost:10.0 (fun () -> done_at := ("a", Engine.now e) :: !done_at);
  Resource.submit r ~cost:5.0 (fun () -> done_at := ("b", Engine.now e) :: !done_at);
  Engine.run e;
  Alcotest.(check (list (pair string (float 1e-9))))
    "serialized FIFO"
    [ ("a", 10.0); ("b", 15.0) ]
    (List.rev !done_at);
  checkf "busy time" 15.0 (Resource.busy_time r)

let test_resource_idle_gap () =
  let e = Engine.create () in
  let r = Resource.create e ~name:"cpu" in
  let at = ref nan in
  ignore
    (Engine.schedule e ~delay:100.0 ~label:"later" (fun () ->
         Resource.submit r ~cost:5.0 (fun () -> at := Engine.now e)));
  Engine.run e;
  checkf "starts when submitted" 105.0 !at

let test_pool_parallelism () =
  let e = Engine.create () in
  let p = Resource.Pool.create e ~name:"w" ~workers:2 in
  let done_at = ref [] in
  for _ = 1 to 4 do
    Resource.Pool.submit p ~cost:10.0 (fun () -> done_at := Engine.now e :: !done_at)
  done;
  Engine.run e;
  (* Two workers: jobs finish at 10,10,20,20. *)
  Alcotest.(check (list (float 1e-9))) "two at a time" [ 10.0; 10.0; 20.0; 20.0 ]
    (List.sort compare !done_at)

let test_resource_negative_cost () =
  let e = Engine.create () in
  let r = Resource.create e ~name:"cpu" in
  checkb "rejected" true
    (try
       Resource.submit r ~cost:(-1.0) (fun () -> ());
       false
     with Invalid_argument _ -> true)

(* ----- determinism ----- *)

let trace_of_run seed =
  let e = Engine.create ~seed () in
  let net = Network.create e Network.default_config in
  let trace = Trace.create () in
  for node = 0 to 3 do
    Network.register net node (fun ~src payload ->
        Trace.record trace ~time:(Engine.now e) ~label:(string_of_int src) payload)
  done;
  let rng = Engine.rng e in
  for i = 0 to 200 do
    let src = i mod 4 and dst = (i + 1 + Splitbft_util.Rng.int rng 3) mod 4 in
    ignore
      (Engine.schedule e
         ~delay:(Splitbft_util.Rng.float rng 1000.0)
         ~label:"send"
         (fun () -> Network.send net ~src ~dst (Printf.sprintf "m%d" i)))
  done;
  Engine.run e;
  Trace.fingerprint trace

let test_determinism_same_seed () =
  Alcotest.(check string) "same seed, same trace" (trace_of_run 42L) (trace_of_run 42L)

let test_determinism_different_seed () =
  checkb "different seed, different trace" false
    (String.equal (trace_of_run 42L) (trace_of_run 43L))

let prop_determinism =
  QCheck.Test.make ~name:"simulation deterministic for any seed" ~count:20 QCheck.int64
    (fun seed -> String.equal (trace_of_run seed) (trace_of_run seed))

let suites =
  [ ( "sim",
      [ Alcotest.test_case "time order" `Quick test_engine_time_order;
        Alcotest.test_case "fifo ties" `Quick test_engine_fifo_ties;
        Alcotest.test_case "cancel" `Quick test_engine_cancel;
        Alcotest.test_case "pending accounting" `Quick test_engine_pending_accounting;
        Alcotest.test_case "until horizon" `Quick test_engine_until;
        Alcotest.test_case "nested schedule" `Quick test_engine_nested_schedule;
        Alcotest.test_case "negative delay" `Quick test_engine_negative_delay_rejected;
        Alcotest.test_case "stop exception" `Quick test_engine_stop;
        Alcotest.test_case "max events" `Quick test_engine_max_events;
        Alcotest.test_case "timer restart" `Quick test_timer_restart;
        Alcotest.test_case "timer start idempotent" `Quick test_timer_start_idempotent;
        Alcotest.test_case "timer stop" `Quick test_timer_stop;
        Alcotest.test_case "net delivery" `Quick test_network_delivery;
        Alcotest.test_case "net unregistered" `Quick test_network_unregistered_dropped;
        Alcotest.test_case "net partition/heal" `Quick test_network_partition_and_heal;
        Alcotest.test_case "net partition same side" `Quick test_network_partition_same_side;
        Alcotest.test_case "net filter drop" `Quick test_network_filter;
        Alcotest.test_case "net filter delay" `Quick test_network_filter_delay;
        Alcotest.test_case "net tap" `Quick test_network_tap_sees_everything;
        Alcotest.test_case "net drop prob" `Quick test_network_drop_probability;
        Alcotest.test_case "net bandwidth" `Quick test_network_bandwidth_delay;
        Alcotest.test_case "resource fifo" `Quick test_resource_fifo;
        Alcotest.test_case "resource idle gap" `Quick test_resource_idle_gap;
        Alcotest.test_case "pool parallelism" `Quick test_pool_parallelism;
        Alcotest.test_case "resource negative cost" `Quick test_resource_negative_cost;
        Alcotest.test_case "determinism same seed" `Quick test_determinism_same_seed;
        Alcotest.test_case "determinism diff seed" `Quick test_determinism_different_seed;
        QCheck_alcotest.to_alcotest prop_determinism ] ) ]
