(* The rollback-protected ledger and its follower replicas.

   Four layers, mirroring the subsystem's structure: (1) the Ledger
   record stream driven directly — append/seal/compact/recover
   roundtrips; (2) the crash-consistency torture sweep — a crash armed
   at every write index of a segment-rotating, compacting run (clean and
   torn variants), recovery asserting no committed entry is lost and
   that rollbacks (served-back history, wiped counters, mid-stream
   corruption) are refused loudly; (3) QCheck properties — compaction
   never drops coverage above the certified checkpoint, and replaying
   base + surviving entries reproduces the exact pre-compaction state
   digest; (4) the live system — follower replicas serving vouched
   reads under the 95/5 mix, the ledger-counter rollback refusal through
   a real crash/tamper/restart, the detector's follower-straggler rule,
   the bench_gate regression semantics, and the storage-off
   bit-identity guarantee. *)

module H = Splitbft_harness
module Cluster = H.Cluster
module Workload = H.Workload
module Safety = H.Safety
module Detector = H.Detector
module Bench_gate = H.Bench_gate
module Proto = Splitbft_proto
module Ledger = Splitbft_storage.Ledger
module Entry = Splitbft_storage.Entry
module Disk = Splitbft_storage.Disk
module Follower = Splitbft_storage.Follower
module Sha256 = Splitbft_crypto.Sha256
module Registry = Splitbft_obs.Registry
module Json = Splitbft_obs.Json

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ----- a trusted-services stand-in: reversible seal, counter ref ----- *)

let seal_prefix = "SEALED|"

let seal blob = seal_prefix ^ blob

let unseal blob =
  let p = String.length seal_prefix in
  if String.length blob >= p && String.sub blob 0 p = seal_prefix then
    Ok (String.sub blob p (String.length blob - p))
  else Error "not sealed"

let make_counter () =
  let c = ref 0L in
  ((fun () -> c := Int64.succ !c; !c), c)

let digest_of seq = Sha256.digest (Printf.sprintf "batch-%d" seq)
let ops_of seq = Printf.sprintf "ops-%d" seq

(* State model for the replay property: a running digest folded over the
   applied op payloads, the same shape the certified checkpoint pins. *)
let fold_state st ops = Sha256.digest (st ^ "|" ^ ops)

(* CI uploads these on failure (same pattern as the chaos/detect
   counterexamples): the surviving record stream of a failing torture
   case, and the flight recording of a failing live recovery, written
   under $STORAGE_ARTIFACT_DIR. *)
let artifact_dir () = Sys.getenv_opt "STORAGE_ARTIFACT_DIR"

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    ignore (Sys.command (Filename.quote_command "mkdir" [ "-p"; dir ]))

let hex s = String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c)) (List.init (String.length s) (String.get s)))

let dump_ledger_artifact ~name records =
  match artifact_dir () with
  | None -> ()
  | Some dir ->
    ensure_dir dir;
    let path = Filename.concat dir (name ^ ".ledger.txt") in
    (try
       let oc = open_out path in
       output_string oc "splitbft-ledger-dump v1\n";
       List.iter (fun (tag, data) -> Printf.fprintf oc "record %s %s\n" tag (hex data)) records;
       close_out oc;
       Printf.eprintf "storage: wrote failing record stream to %s\n%!" path
     with Sys_error e -> Printf.eprintf "storage: could not write artifact: %s\n%!" e)

let dump_flight_artifact ~name flight =
  match artifact_dir () with
  | None -> ()
  | Some dir ->
    ensure_dir dir;
    let path = Filename.concat dir (name ^ ".flight.txt") in
    (try
       Splitbft_obs.Flight.save ~path flight;
       Printf.eprintf "storage: wrote flight recording to %s\n%!" path
     with Sys_error e -> Printf.eprintf "storage: could not write artifact: %s\n%!" e)

(* ----- (1) ledger roundtrips ----- *)

let test_ledger_append_seal_recover () =
  let led = Ledger.create ~segment_entries:3 in
  let bump, counter = make_counter () in
  let records = ref [] in
  for seq = 1 to 8 do
    records :=
      !records
      @ Ledger.append led ~seal ~counter:bump ~seq ~digest:(digest_of seq)
          ~ops:(ops_of seq)
  done;
  checki "eight entries" 8 (Ledger.last_seq led);
  (* 8 entries over 3-entry segments: seals at 3 and 6, 2 open. *)
  checki "two sealed segments" 2 (List.length (Ledger.sealed_segments led));
  checki "records = entries + seals" 10 (List.length !records);
  match Ledger.recover ~segment_entries:3 ~counter:!counter ~unseal !records with
  | Error e -> Alcotest.failf "clean recovery refused: %s" e
  | Ok r ->
    checkb "no torn tail" false r.Ledger.torn_tail;
    checki "all entries back" 8 (List.length r.Ledger.entries);
    checks "chain continues" (Ledger.chain led) (Ledger.chain r.Ledger.ledger);
    checki "segments back" 2 (List.length (Ledger.sealed_segments r.Ledger.ledger));
    (* Appending past recovery continues the same chain. *)
    let recs = Ledger.append r.Ledger.ledger ~seal ~counter:bump ~seq:9 ~digest:(digest_of 9) ~ops:(ops_of 9) in
    checki "rotation at 9" 2 (List.length recs)

let test_ledger_append_idempotent () =
  let led = Ledger.create ~segment_entries:4 in
  let bump, _ = make_counter () in
  ignore (Ledger.append led ~seal ~counter:bump ~seq:1 ~digest:(digest_of 1) ~ops:(ops_of 1));
  checkb "duplicate skipped" true
    (Ledger.append led ~seal ~counter:bump ~seq:1 ~digest:(digest_of 1) ~ops:(ops_of 1) = []);
  checki "still one entry" 1 (Ledger.last_seq led)

let test_ledger_compact_drops_covered_only () =
  let led = Ledger.create ~segment_entries:3 in
  let bump, _ = make_counter () in
  for seq = 1 to 10 do
    ignore (Ledger.append led ~seal ~counter:bump ~seq ~digest:(digest_of seq) ~ops:(ops_of seq))
  done;
  (* Segments 1-3, 4-6, 7-9 sealed; stable=7 covers only the first two. *)
  let recs = Ledger.compact led ~stable:7 ~state_digest:"SD" ~seal ~counter:bump in
  checki "base + cut" 2 (List.length recs);
  checki "floor at covered boundary" 6 (Ledger.floor led);
  checki "uncovered segment kept" 1 (List.length (Ledger.sealed_segments led));
  checkb "nothing more to drop" true
    (Ledger.compact led ~stable:7 ~state_digest:"SD" ~seal ~counter:bump = [])

(* ----- (2) crash-consistency torture sweep ----- *)

(* One segment-rotating, compacting run driven through the crash-injecting
   Disk: 14 appends over 3-entry segments, a compaction (stable = 6)
   after seq 9.  Returns the surviving records, the platform counter at
   the crash, and the committed prefix (seqs whose entry record write
   returned true — the durability the recovery sweep must preserve). *)
let torture_run ~crash_at ~torn =
  let disk = Disk.create () in
  (match crash_at with
  | Some at -> Disk.arm_crash disk ~at ~torn
  | None -> ());
  let led = Ledger.create ~segment_entries:3 in
  let bump, counter = make_counter () in
  let committed = ref [] in
  let alive = ref true in
  (* An entry is durable once its own record write returns — a lost
     segment-seal write afterwards kills the host but not the entry. *)
  let persist recs =
    List.for_all
      (fun (tag, data) ->
        let ok = Disk.write disk ~tag data in
        (if ok && String.equal tag Ledger.entry_tag then
           match Entry.seq_of_record data with
           | Some s -> committed := s :: !committed
           | None -> ());
        ok)
      recs
  in
  let seq = ref 1 in
  while !alive && !seq <= 14 do
    let s = !seq in
    let recs = Ledger.append led ~seal ~counter:bump ~seq:s ~digest:(digest_of s) ~ops:(ops_of s) in
    if not (persist recs) then alive := false;
    if !alive && s = 9 then
      if not (persist (Ledger.compact led ~stable:6 ~state_digest:"SD@6" ~seal ~counter:bump))
      then alive := false;
    incr seq
  done;
  (Disk.records disk, !counter, List.rev !committed)

let torture_total_writes () =
  let disk = Disk.create () in
  let led = Ledger.create ~segment_entries:3 in
  let bump, _ = make_counter () in
  for s = 1 to 14 do
    List.iter (fun (tag, data) -> ignore (Disk.write disk ~tag data))
      (Ledger.append led ~seal ~counter:bump ~seq:s ~digest:(digest_of s) ~ops:(ops_of s));
    if s = 9 then
      List.iter (fun (tag, data) -> ignore (Disk.write disk ~tag data))
        (Ledger.compact led ~stable:6 ~state_digest:"SD@6" ~seal ~counter:bump)
  done;
  Disk.write_count disk

let test_torture_crash_every_write () =
  let total = torture_total_writes () in
  checkb "sweep is non-trivial" true (total >= 18);
  List.iter
    (fun torn ->
      for at = 0 to total - 1 do
        let records, counter, committed = torture_run ~crash_at:(Some at) ~torn in
        let where =
          Printf.sprintf "crash at write %d (%s)" at
            (match torn with None -> "clean" | Some k -> Printf.sprintf "torn %dB" k)
        in
        let slug =
          Printf.sprintf "torture-at%d-%s" at
            (match torn with None -> "clean" | Some k -> Printf.sprintf "torn%d" k)
        in
        match Ledger.recover ~segment_entries:3 ~counter ~unseal records with
        | Error e ->
          dump_ledger_artifact ~name:slug records;
          Alcotest.failf "%s: genuine crash refused: %s" where e
        | Ok r ->
          let recovered = List.map (fun e -> e.Entry.seq) r.Ledger.entries in
          let floor = Ledger.floor r.Ledger.ledger in
          if
            List.exists (fun s -> not (s <= floor || List.mem s recovered)) committed
            || List.exists (fun s -> not (List.mem s committed)) recovered
          then dump_ledger_artifact ~name:slug records;
          (* No committed entry lost: every durably persisted entry is
             either above the recovered floor and replayed, or below it
             and covered by the certified base. *)
          List.iter
            (fun s ->
              checkb
                (Printf.sprintf "%s: committed seq %d survives" where s)
                true
                (s <= floor || List.mem s recovered))
            committed;
          (* ... and nothing is invented. *)
          List.iter
            (fun s ->
              checkb
                (Printf.sprintf "%s: recovered seq %d was committed" where s)
                true (List.mem s committed))
            recovered
      done)
    [ None; Some 1; Some 7 ]

let test_torture_rollback_refused () =
  (* Full run, then the host serves back a prefix missing the two newest
     sealed artifacts: the counter binding must catch it. *)
  let records, counter, _ = torture_run ~crash_at:None ~torn:None in
  let upto tag_stop =
    let rec go acc = function
      | [] -> List.rev acc
      | (tag, _) :: _ when tag = tag_stop -> List.rev acc
      | r :: rest -> go (r :: acc) rest
    in
    go [] records
  in
  (* Everything before the 4-9 rotation: two counter bumps behind. *)
  let old = upto (Ledger.seal_tag 6) in
  (match Ledger.recover ~segment_entries:3 ~counter ~unseal old with
  | Ok _ -> Alcotest.fail "rolled-back ledger accepted"
  | Error e -> checkb "refusal names the rollback" true (contains ~sub:"rollback detected" e))

let test_torture_midstream_corruption_refused () =
  let records, counter, _ = torture_run ~crash_at:None ~torn:None in
  let flip_at i =
    List.mapi
      (fun j (tag, data) ->
        if i = j then
          (tag, String.mapi (fun k c -> if k = String.length data / 2 then Char.chr (Char.code c lxor 0x40) else c) data)
        else (tag, data))
      records
  in
  (* Flip a byte inside an entry record above the compaction floor and
     before the tail: that is live history and must be refused. *)
  (match Ledger.recover ~segment_entries:3 ~counter ~unseal (flip_at (List.length records - 2)) with
  | Ok _ -> Alcotest.fail "mid-stream corruption accepted"
  | Error e -> checkb "refused as tampering" true (contains ~sub:"tampered" e));
  (* A flip below the floor hits history the certified base already
     covers — recovery skips it rather than refusing. *)
  match Ledger.recover ~segment_entries:3 ~counter ~unseal (flip_at 2) with
  | Ok r -> checki "floor unchanged" 6 (Ledger.floor r.Ledger.ledger)
  | Error e -> Alcotest.failf "covered corruption refused: %s" e

let test_torture_torn_tail_truncated () =
  (* Torn final record: recovery succeeds, flags the truncation, and the
     torn entry (whose write never returned) is simply absent. *)
  let total = torture_total_writes () in
  let records, counter, committed = torture_run ~crash_at:(Some (total - 1)) ~torn:(Some 5) in
  match Ledger.recover ~segment_entries:3 ~counter ~unseal records with
  | Error e -> Alcotest.failf "torn tail refused: %s" e
  | Ok r ->
    checkb "torn tail detected" true r.Ledger.torn_tail;
    let last_committed = List.fold_left max 0 committed in
    checkb "committed prefix intact" true
      (List.for_all
         (fun s -> s <= Ledger.floor r.Ledger.ledger || List.exists (fun e -> e.Entry.seq = s) r.Ledger.entries)
         committed);
    checkb "torn entry truncated" true
      (not (List.exists (fun e -> e.Entry.seq > last_committed) r.Ledger.entries))

(* ----- (3) QCheck: compaction coverage and replay ----- *)

(* Host-side GC, exactly the broker's rule: on a cut marker drop entry
   records at or below the cut and seal headers ending at or below it;
   keep the newest base/cut only. *)
let gc_records records =
  let cut =
    List.fold_left
      (fun acc (tag, data) ->
        if String.equal tag Ledger.cut_tag then
          max acc (Option.value ~default:0 (int_of_string_opt data))
        else acc)
      0 records
  in
  let newest_base =
    List.fold_left
      (fun acc (tag, data) ->
        if String.equal tag Ledger.base_tag then Some data else acc)
      None records
  in
  let kept =
    List.filter
      (fun (tag, data) ->
        if String.equal tag Ledger.entry_tag then
          match Entry.seq_of_record data with Some s -> s > cut | None -> true
        else
          match Ledger.seal_tag_seq tag with
          | Some last -> last > cut
          | None -> false (* bases and cuts re-appended below *))
      records
  in
  (match newest_base with Some b -> [ (Ledger.base_tag, b) ] | None -> [])
  @ (if cut > 0 then [ (Ledger.cut_tag, string_of_int cut) ] else [])
  @ kept

let ledger_shape =
  QCheck.(triple (int_range 1 6) (int_range 0 48) (int_range 0 56))

(* Append [n] entries through a fresh ledger, tracking the model state
   digest, then compact at [stable].  Returns the full record stream,
   the platform counter, and the model's final state digest. *)
let drive ~segment_entries ~n ~stable =
  let led = Ledger.create ~segment_entries in
  let bump, counter = make_counter () in
  let records = ref [] in
  let state = ref "init" in
  let state_at_stable = ref "init" in
  for seq = 1 to n do
    records :=
      !records
      @ Ledger.append led ~seal ~counter:bump ~seq ~digest:(digest_of seq) ~ops:(ops_of seq);
    state := fold_state !state (ops_of seq);
    if seq = stable then state_at_stable := !state
  done;
  if stable > n then state_at_stable := !state;
  let base = Ledger.compact led ~stable ~state_digest:!state_at_stable ~seal ~counter:bump in
  (led, !records @ base, !counter, !state)

let prop_compaction_never_drops_uncovered =
  QCheck.Test.make ~name:"compaction keeps every segment above the stable checkpoint"
    ~count:300 ledger_shape (fun (segment_entries, n, stable) ->
      let led, records, counter, _ = drive ~segment_entries ~n ~stable in
      if Ledger.floor led > stable then
        QCheck.Test.fail_reportf "floor %d above stable %d" (Ledger.floor led) stable;
      List.iter
        (fun sg ->
          if sg.Ledger.sg_last <= stable then
            QCheck.Test.fail_reportf "segment ending at %d survived compaction at stable %d"
              sg.Ledger.sg_last stable)
        (Ledger.sealed_segments led);
      (* After host-side GC, every entry above the stable checkpoint is
         still recoverable: compaction (plus the GC it licenses) never
         touches them. *)
      match Ledger.recover ~segment_entries ~counter ~unseal (gc_records records) with
      | Error e -> QCheck.Test.fail_reportf "post-GC recovery refused: %s" e
      | Ok r ->
        let got = List.map (fun e -> e.Entry.seq) r.Ledger.entries in
        for s = stable + 1 to n do
          if not (List.mem s got) then
            QCheck.Test.fail_reportf "entry %d above stable %d lost (se=%d n=%d)" s stable
              segment_entries n
        done;
        true)

let prop_replay_reproduces_state_digest =
  QCheck.Test.make
    ~name:"replaying base + surviving entries reproduces the pre-compaction state digest"
    ~count:300 ledger_shape (fun (segment_entries, n, stable) ->
      let _, records, counter, final_state = drive ~segment_entries ~n ~stable in
      match Ledger.recover ~segment_entries ~counter ~unseal (gc_records records) with
      | Error e -> QCheck.Test.fail_reportf "post-GC recovery refused: %s" e
      | Ok r ->
        (* Start from the certified digest the base recorded (the state at
           [rec_stable]) and apply only the surviving entries past it —
           exactly what a recovering Execution or bootstrapping follower
           does. *)
        let start, from =
          if Ledger.floor r.Ledger.ledger > 0 then
            (r.Ledger.rec_state_digest, r.Ledger.rec_stable)
          else ("init", 0)
        in
        let replayed =
          List.fold_left
            (fun st (e : Entry.t) -> if e.seq > from then fold_state st e.ops else st)
            start r.Ledger.entries
        in
        if not (String.equal replayed final_state) then
          QCheck.Test.fail_reportf "replay diverged (se=%d n=%d stable=%d)" segment_entries
            n stable;
        true)

(* ----- (4) the live system ----- *)

let storage_proto ?(segment_entries = 8) () = Proto.Proto_splitbft.make ~segment_entries ()

let storage_params ?(followers = 2) ?(seed = 91L) () =
  { (Cluster.default_params (storage_proto ())) with
    Cluster.checkpoint_interval = 16;
    seed;
    followers }

let reads_spec =
  { Workload.Reads.default_spec with
    Workload.Reads.clients = 4;
    warmup_us = 100_000.0;
    duration_us = 300_000.0 }

let test_followers_serve_vouched_reads () =
  let c = Cluster.create (storage_params ()) in
  let scanner = Safety.install_scanner c in
  let r = Workload.Reads.run c reads_spec in
  checkb "reads served" true (r.Workload.Reads.reads_ok > 0);
  checkb "writes committed" true (r.Workload.Reads.writes_ok > 0);
  checki "no wrong reads" 0 r.Workload.Reads.wrong_reads;
  checkb "followers applied entries" true
    (List.for_all (fun fo -> Follower.entries_applied fo > 0) (Cluster.followers c));
  checkb "follower logs consistent" true
    (Safety.check_followers c ~honest:[ 0; 1; 2; 3 ] = Safety.Followers_ok);
  (* The sealed feed and read channel must not leak plaintext. *)
  checki "no canary on the wire" 0 (Safety.network_leaks scanner);
  checki "no canary in storage" 0 (Safety.storage_leaks c ~honest_hosts:[ 0; 1; 2; 3 ])

let test_pbft_plaintext_followers () =
  (* The follower capability is protocol-generic: PBFT publishes a
     plaintext host-level feed, no enclaves involved. *)
  let params =
    { (Cluster.default_params Proto.Proto_pbft.protocol) with
      Cluster.seed = 92L;
      followers = 1 }
  in
  let c = Cluster.create params in
  let r = Workload.Reads.run c reads_spec in
  checkb "reads served" true (r.Workload.Reads.reads_ok > 0);
  checki "no wrong reads" 0 r.Workload.Reads.wrong_reads;
  checkb "follower consistent" true
    (Safety.check_followers c ~honest:[ 0; 1; 2; 3 ] = Safety.Followers_ok)

let test_followers_rejected_without_feed () =
  (* MinBFT publishes no feed; asking for followers is a deployment error. *)
  let params =
    { (Cluster.default_params Proto.Proto_minbft.protocol) with Cluster.followers = 1 }
  in
  checkb "refused" true
    (match Cluster.create params with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* ... as is SplitBFT with the ledger disabled. *)
  let params =
    { (Cluster.default_params Proto.Proto_splitbft.protocol) with Cluster.followers = 1 }
  in
  checkb "refused without ledger" true
    (match Cluster.create params with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_ledger_counter_rollback_refused () =
  (* Commit through the ledger, crash a host, wipe its ledger counter,
     restart: the In_ledger recovery handshake must refuse the now
     unbindable sealed segments, halt, and alert — the PR-3 path. *)
  let c = Cluster.create (storage_params ~followers:0 ~seed:93L ()) in
  ignore
    (Workload.run c
       { Workload.default_spec with
         Workload.clients = 2;
         warmup_us = 0.0;
         duration_us = 500_000.0 });
  let n3 = Cluster.node c 3 in
  checkb "ledger records persisted" true
    (List.exists (fun (tag, _) -> Ledger.is_ledger_tag tag) (Cluster.persisted_of n3));
  Cluster.crash_host c 3;
  Cluster.tamper_ledger_counter c 3;
  Cluster.restart_host c 3;
  let e = Cluster.engine c in
  Cluster.run c ~until_us:(Splitbft_sim.Engine.now e +. 400_000.0);
  checkb "restart refused" false (Cluster.recovered_of n3);
  let alerts = Cluster.recovery_alerts_of n3 in
  checkb "alert raised" true (alerts <> []);
  checkb "alert names the ledger" true (List.exists (contains ~sub:"ledger") alerts)

let test_ledger_crash_recover_clean () =
  (* Without tampering, a crashed host replays its persisted ledger and
     rejoins; the second-phase In_ledger handshake must not refuse. *)
  let flight = Splitbft_obs.Flight.create () in
  let c = Cluster.create ~flight (storage_params ~followers:1 ~seed:94L ()) in
  ignore
    (Workload.run c
       { Workload.default_spec with
         Workload.clients = 2;
         warmup_us = 0.0;
         duration_us = 400_000.0 });
  Cluster.crash_host c 2;
  Cluster.restart_host c 2;
  ignore
    (Workload.run c
       { Workload.default_spec with
         Workload.clients = 2;
         warmup_us = 0.0;
         duration_us = 400_000.0 });
  let n2 = Cluster.node c 2 in
  if not (Cluster.recovered_of n2) || Cluster.recovery_alerts_of n2 <> [] then begin
    dump_flight_artifact ~name:"crash-recover" flight;
    dump_ledger_artifact ~name:"crash-recover"
      (List.filter (fun (tag, _) -> Ledger.is_ledger_tag tag) (Cluster.persisted_of n2))
  end;
  checkb "recovered" true (Cluster.recovered_of n2);
  checkb "no refusal" true (Cluster.recovery_alerts_of n2 = []);
  checkb "follower still consistent" true
    (Safety.check_followers c ~honest:[ 0; 1; 2; 3 ] = Safety.Followers_ok)

let test_detector_follower_straggler () =
  (* A follower whose vouched-tip lag exceeds the bound must raise the
     follower-straggler alert.  Stop the follower (freezing its gauges),
     then report a lag beyond the bound the way the live follower would,
     and let the detector sample it. *)
  let c = Cluster.create (storage_params ~followers:1 ~seed:95L ()) in
  let d = Detector.attach c in
  ignore
    (Workload.run c
       { Workload.default_spec with
         Workload.clients = 2;
         warmup_us = 0.0;
         duration_us = 300_000.0 });
  checkb "healthy follower: no alert" true
    (not (List.mem "follower-straggler" (Detector.fired d)));
  let fo = Cluster.follower c 0 in
  Follower.stop fo;
  let g =
    Registry.gauge (Cluster.obs c)
      ~labels:[ ("follower", string_of_int (Follower.fid fo)) ]
      "follower.lag"
  in
  Registry.set g (float_of_int ((Cluster.params c).Cluster.follower_lag_bound + 100));
  let e = Cluster.engine c in
  Cluster.run c ~until_us:(Splitbft_sim.Engine.now e +. 600_000.0);
  checkb "straggler alert fired" true (List.mem "follower-straggler" (Detector.fired d));
  checkb "accuses the follower" true
    (List.mem "follower-straggler" (Detector.fired_at d ~replica:(Follower.fid fo)))

let test_storage_off_bit_identical () =
  (* segment_entries = 0 must be indistinguishable from the pre-ledger
     protocol: same executed history, same metrics snapshot, and not a
     single ledger record persisted. *)
  let run proto =
    let c =
      Cluster.create { (Cluster.default_params proto) with Cluster.seed = 96L }
    in
    ignore
      (Workload.run c
         { Workload.default_spec with
           Workload.clients = 2;
           warmup_us = 0.0;
           duration_us = 300_000.0 });
    let logs = List.map Cluster.executed_log_of (Cluster.nodes c) in
    let persisted = List.concat_map Cluster.persisted_of (Cluster.nodes c) in
    (logs, Json.to_string (Registry.to_json (Cluster.obs c)), persisted)
  in
  let logs_off, obs_off, persisted_off = run (Proto.Proto_splitbft.make ~segment_entries:0 ()) in
  let logs_def, obs_def, _ = run Proto.Proto_splitbft.protocol in
  checkb "ledger fully disabled" true
    (not (List.exists (fun (tag, _) -> Ledger.is_ledger_tag tag) persisted_off));
  checkb "same executed history" true (logs_off = logs_def);
  checks "bit-identical metrics snapshot" obs_def obs_off

(* ----- bench_gate: the missing-metric hard failure ----- *)

let doc_of artifacts = Json.Obj [ ("artifacts", Json.Obj artifacts) ]

let point ?tput ?ecall ?p99 label =
  let f name v = Option.map (fun x -> (name, Json.Float x)) v in
  Json.Obj
    (("label", Json.Str label)
    :: List.filter_map Fun.id
         [ f "throughput_ops" tput; f "ecall_us_per_request" ecall; f "p99_latency_us" p99 ])

let gate ~baseline ~current =
  match
    Bench_gate.check ~baseline_name:"base.json" ~current_name:"cur.json" ~baseline ~current ()
  with
  | Error e -> Alcotest.failf "gate errored: %s" e
  | Ok report -> report

let test_gate_clean_pass () =
  let doc =
    doc_of
      [ ("hotpath",
         Json.List
           [ point ~tput:1000.0 ~ecall:5.0 "batch200"; point ~tput:990.0 "batch200-detect" ]) ]
  in
  let r = gate ~baseline:doc ~current:doc in
  checki "no failures" 0 r.Bench_gate.failures;
  checkb "checked" true (r.Bench_gate.checked > 0)

let test_gate_regression_fails () =
  let baseline = doc_of [ ("lanes", Json.List [ point ~tput:1000.0 "l4w4b200" ]) ] in
  let current = doc_of [ ("lanes", Json.List [ point ~tput:500.0 "l4w4b200" ]) ] in
  let r = gate ~baseline ~current in
  checki "one failure" 1 r.Bench_gate.failures

let test_gate_missing_point_fails () =
  let baseline = doc_of [ ("lanes", Json.List [ point ~tput:1000.0 "l4w4b200" ]) ] in
  let current = doc_of [ ("lanes", Json.List [ point ~tput:1000.0 "other" ]) ] in
  let r = gate ~baseline ~current in
  checkb "missing point is a failure" true (r.Bench_gate.failures >= 1);
  checkb "reported as missing" true
    (List.exists
       (fun row -> row.Bench_gate.r_verdict = Bench_gate.Missing_point)
       r.Bench_gate.rows)

let test_gate_missing_metric_fails () =
  (* The regression this PR fixes: a metric the baseline gates that the
     current run no longer reports must be a hard failure. *)
  let baseline =
    doc_of [ ("lanes", Json.List [ point ~tput:1000.0 ~p99:800.0 "l4w4b200" ]) ]
  in
  let current = doc_of [ ("lanes", Json.List [ point ~tput:1000.0 "l4w4b200" ]) ] in
  let r = gate ~baseline ~current in
  checkb "missing metric is a failure" true (r.Bench_gate.failures >= 1);
  checkb "reported as missing metric" true
    (List.exists
       (fun row ->
         match row.Bench_gate.r_verdict with Bench_gate.Missing_metric _ -> true | _ -> false)
       r.Bench_gate.rows)

let test_gate_detect_twin_missing_fails () =
  (* ... and so must the silently-dropped detectors-on twin, which the
     old fallthrough waved through. *)
  let baseline = doc_of [] in
  let current = doc_of [ ("hotpath", Json.List [ point ~tput:1000.0 "batch200" ]) ] in
  let r = gate ~baseline ~current in
  checkb "missing twin is a failure" true (r.Bench_gate.failures >= 1);
  checkb "names the twin" true
    (List.exists
       (fun row ->
         match row.Bench_gate.r_verdict with
         | Bench_gate.Missing_metric what -> contains ~sub:"batch200-detect" what
         | _ -> false)
       r.Bench_gate.rows)

let test_gate_storage_scale () =
  let current ratio =
    doc_of
      [ ("storage",
         Json.List [ point ~tput:10_000.0 "reads-f4"; point ~tput:ratio "read-scale-f4-vs-f0" ]) ]
  in
  let r = gate ~baseline:(doc_of []) ~current:(current 3.5) in
  checki "scale >= 2 passes" 0 r.Bench_gate.failures;
  let r = gate ~baseline:(doc_of []) ~current:(current 1.5) in
  checkb "scale < 2 fails" true (r.Bench_gate.failures >= 1);
  (* A storage artifact without the ratio row is the same silent-pass
     shape as the detect twin: hard failure. *)
  let no_ratio = doc_of [ ("storage", Json.List [ point ~tput:10_000.0 "reads-f4" ]) ] in
  let r = gate ~baseline:(doc_of []) ~current:no_ratio in
  checkb "missing ratio row fails" true (r.Bench_gate.failures >= 1)

let suites =
  [ ( "storage",
      [ Alcotest.test_case "ledger roundtrip" `Quick test_ledger_append_seal_recover;
        Alcotest.test_case "append idempotent" `Quick test_ledger_append_idempotent;
        Alcotest.test_case "compact covered only" `Quick test_ledger_compact_drops_covered_only;
        Alcotest.test_case "torture: crash every write" `Quick test_torture_crash_every_write;
        Alcotest.test_case "torture: rollback refused" `Quick test_torture_rollback_refused;
        Alcotest.test_case "torture: corruption refused" `Quick
          test_torture_midstream_corruption_refused;
        Alcotest.test_case "torture: torn tail" `Quick test_torture_torn_tail_truncated;
        QCheck_alcotest.to_alcotest prop_compaction_never_drops_uncovered;
        QCheck_alcotest.to_alcotest prop_replay_reproduces_state_digest;
        Alcotest.test_case "followers serve reads" `Quick test_followers_serve_vouched_reads;
        Alcotest.test_case "pbft plaintext followers" `Quick test_pbft_plaintext_followers;
        Alcotest.test_case "followers need a feed" `Quick test_followers_rejected_without_feed;
        Alcotest.test_case "ledger rollback refused" `Quick test_ledger_counter_rollback_refused;
        Alcotest.test_case "ledger crash recovery" `Quick test_ledger_crash_recover_clean;
        Alcotest.test_case "follower straggler alert" `Quick test_detector_follower_straggler;
        Alcotest.test_case "storage off bit-identical" `Quick test_storage_off_bit_identical;
        Alcotest.test_case "gate clean pass" `Quick test_gate_clean_pass;
        Alcotest.test_case "gate regression" `Quick test_gate_regression_fails;
        Alcotest.test_case "gate missing point" `Quick test_gate_missing_point_fails;
        Alcotest.test_case "gate missing metric" `Quick test_gate_missing_metric_fails;
        Alcotest.test_case "gate missing detect twin" `Quick test_gate_detect_twin_missing_fails;
        Alcotest.test_case "gate storage scale" `Quick test_gate_storage_scale ] ) ]
