module Engine = Splitbft_sim.Engine
module Resource = Splitbft_sim.Resource
module Measurement = Splitbft_tee.Measurement
module Platform = Splitbft_tee.Platform
module Enclave = Splitbft_tee.Enclave
module Attestation = Splitbft_tee.Attestation
module Sealing = Splitbft_tee.Sealing
module Cost_model = Splitbft_tee.Cost_model
module Rng = Splitbft_util.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-6))
let meas name = Measurement.of_source ~name ~version:"1" ~code:("code of " ^ name)

let setup () =
  let engine = Engine.create () in
  let platform = Platform.create engine ~id:0 in
  (engine, platform)

(* ----- measurement ----- *)

let test_measurement_identity () =
  checkb "same source, same measurement" true
    (Measurement.equal (meas "a") (meas "a"));
  checkb "different source differs" false (Measurement.equal (meas "a") (meas "b"));
  checkb "raw length" true (String.length (Measurement.to_raw (meas "a")) = 32);
  checkb "of_raw rejects short" true (Result.is_error (Measurement.of_raw "short"))

(* ----- platform counters ----- *)

let test_monotonic_counters () =
  let _, platform = setup () in
  Alcotest.(check int64) "starts at 0" 0L (Platform.counter_read platform "c");
  Alcotest.(check int64) "first" 1L (Platform.counter_increment platform "c");
  Alcotest.(check int64) "second" 2L (Platform.counter_increment platform "c");
  Alcotest.(check int64) "independent" 1L (Platform.counter_increment platform "other");
  Platform.counter_tamper_reset platform "c";
  Alcotest.(check int64) "rollback visible" 1L (Platform.counter_increment platform "c")

let test_sealing_key_binding () =
  let _, platform = setup () in
  let engine2 = Engine.create () in
  let platform2 = Platform.create engine2 ~id:1 in
  let k_a = Platform.sealing_key platform (meas "a") in
  checkb "same (platform, measurement) stable" true
    (String.equal k_a (Platform.sealing_key platform (meas "a")));
  checkb "measurement separates" false
    (String.equal k_a (Platform.sealing_key platform (meas "b")));
  checkb "platform separates" false
    (String.equal k_a (Platform.sealing_key platform2 (meas "a")))

(* ----- sealing ----- *)

let test_sealing_roundtrip () =
  let rng = Rng.create 9L in
  let key = String.make 32 's' in
  let blob = Sealing.seal ~key ~rng "state" in
  (match Sealing.unseal ~key blob with
  | Ok pt -> Alcotest.(check string) "roundtrip" "state" pt
  | Error e -> Alcotest.fail e);
  checkb "wrong key fails" true
    (Result.is_error (Sealing.unseal ~key:(String.make 32 'x') blob));
  checkb "short blob fails" true (Result.is_error (Sealing.unseal ~key "tiny"))

(* ----- attestation ----- *)

let test_attestation_verify () =
  let _, platform = setup () in
  let quote = Attestation.create platform ~measurement:(meas "enclave") ~report_data:"pk" in
  checkb "genuine verifies" true (Attestation.verify quote);
  checkb "expected measurement ok" true
    (Attestation.verify ~expected_measurement:(meas "enclave") quote);
  checkb "wrong measurement rejected" false
    (Attestation.verify ~expected_measurement:(meas "other") quote)

let test_attestation_tamper () =
  let _, platform = setup () in
  let quote = Attestation.create platform ~measurement:(meas "enclave") ~report_data:"pk" in
  let forged = { quote with Attestation.report_data = "evil" } in
  checkb "tampered report data rejected" false (Attestation.verify forged)

let test_attestation_codec () =
  let _, platform = setup () in
  let quote = Attestation.create platform ~measurement:(meas "enclave") ~report_data:"pk" in
  match Attestation.decode (Attestation.encode quote) with
  | Ok q -> checkb "decoded verifies" true (Attestation.verify q)
  | Error e -> Alcotest.fail e

let test_attestation_fake_platform () =
  (* A quote signed by a key that is not genuine hardware. *)
  let fake = Splitbft_crypto.Signature.derive ~seed:"not-hardware" in
  let quote =
    { Attestation.platform_public = fake.Splitbft_crypto.Signature.public;
      measurement = meas "enclave";
      report_data = "pk";
      signature = String.make 32 's' }
  in
  checkb "fake platform rejected" false (Attestation.verify quote)

(* ----- enclave ----- *)

let make_enclave ?(cost = Cost_model.free) platform ~program =
  Enclave.create platform ~name:"e" ~measurement:(meas "test-enclave") ~cost_model:cost
    ~key_seed:"enclave-key" ~program

let echo_program env payload = Enclave.emit env ("echo:" ^ payload)

let test_enclave_ecall_outputs () =
  let engine, platform = setup () in
  let enclave = make_enclave platform ~program:(fun env -> echo_program env) in
  let thread = Resource.create engine ~name:"t" in
  let got = ref [] in
  Enclave.ecall enclave ~thread ~payload:"hi" ~on_done:(fun outs -> got := outs) ();
  Engine.run engine;
  Alcotest.(check (list string)) "echoed" [ "echo:hi" ] !got

let test_enclave_state_isolated_in_closure () =
  let engine, platform = setup () in
  let enclave =
    make_enclave platform ~program:(fun env ->
        let counter = ref 0 in
        fun _payload ->
          incr counter;
          Enclave.emit env (string_of_int !counter))
  in
  let thread = Resource.create engine ~name:"t" in
  let got = ref [] in
  let call () =
    Enclave.ecall enclave ~thread ~payload:"" ~on_done:(fun outs -> got := !got @ outs) ()
  in
  call ();
  call ();
  call ();
  Engine.run engine;
  Alcotest.(check (list string)) "state persists across ecalls" [ "1"; "2"; "3" ] !got

let test_enclave_metering () =
  let engine, platform = setup () in
  let cost = { Cost_model.free with Cost_model.ecall_transition_us = 2.0; copy_per_byte_us = 1.0 } in
  let enclave =
    make_enclave ~cost platform ~program:(fun env -> fun _ -> Enclave.charge env 10.0)
  in
  let thread = Resource.create engine ~name:"t" in
  let done_at = ref nan in
  Enclave.ecall enclave ~thread ~payload:"abcd" ~on_done:(fun _ -> done_at := Engine.now engine) ();
  Engine.run engine;
  (* 2 (transition) + 4 (copy-in) + 10 (charge) + 0 (no outputs) *)
  checkf "metered duration" 16.0 !done_at;
  checki "ecall counted" 1 (Enclave.ecall_count enclave);
  checkf "total time" 16.0 (Enclave.ecall_total_us enclave)

let test_enclave_thread_serializes () =
  let engine, platform = setup () in
  let cost = { Cost_model.free with Cost_model.ecall_transition_us = 10.0 } in
  let enclave = make_enclave ~cost platform ~program:(fun _ -> fun _ -> ()) in
  let thread = Resource.create engine ~name:"t" in
  let done_at = ref [] in
  for _ = 1 to 3 do
    Enclave.ecall enclave ~thread ~payload:"" ~on_done:(fun _ ->
        done_at := Engine.now engine :: !done_at) ()
  done;
  Engine.run engine;
  Alcotest.(check (list (float 1e-9))) "serialized on the thread" [ 10.0; 20.0; 30.0 ]
    (List.rev !done_at)

let test_enclave_crash_and_restart () =
  let engine, platform = setup () in
  let program env =
    let n = ref 0 in
    fun _ ->
      incr n;
      Enclave.emit env (string_of_int !n)
  in
  let enclave = make_enclave platform ~program in
  let thread = Resource.create engine ~name:"t" in
  let got = ref [] in
  let call () =
    Enclave.ecall enclave ~thread ~payload:"" ~on_done:(fun outs -> got := !got @ outs) ()
  in
  call ();
  Engine.run engine;
  Enclave.crash enclave;
  checkb "crashed" true (Enclave.is_crashed enclave);
  call ();
  Engine.run engine;
  Alcotest.(check (list string)) "crashed enclave silent" [ "1" ] !got;
  Enclave.restart enclave ~program;
  checkb "running again" false (Enclave.is_crashed enclave);
  call ();
  Engine.run engine;
  Alcotest.(check (list string)) "fresh state after restart" [ "1"; "1" ] !got

let test_enclave_subvert () =
  let engine, platform = setup () in
  let enclave = make_enclave platform ~program:(fun env -> echo_program env) in
  let thread = Resource.create engine ~name:"t" in
  Enclave.subvert enclave (fun env -> fun _ -> Enclave.emit env "evil");
  checkb "marked subverted" true (Enclave.is_subverted enclave);
  let got = ref [] in
  Enclave.ecall enclave ~thread ~payload:"hi" ~on_done:(fun outs -> got := outs) ();
  Engine.run engine;
  Alcotest.(check (list string)) "adversarial behavior" [ "evil" ] !got

let test_enclave_seal_env () =
  let engine, platform = setup () in
  let out = ref [] in
  let enclave =
    make_enclave platform ~program:(fun env ->
        fun payload ->
          if payload = "seal" then Enclave.emit env (Enclave.seal env "secret-state")
          else
            match Enclave.unseal env payload with
            | Ok pt -> Enclave.emit env ("recovered:" ^ pt)
            | Error e -> Enclave.emit env ("error:" ^ e))
  in
  let thread = Resource.create engine ~name:"t" in
  Enclave.ecall enclave ~thread ~payload:"seal" ~on_done:(fun outs -> out := outs) ();
  Engine.run engine;
  let sealed = List.hd !out in
  checkb "sealed is not plaintext" false (String.equal sealed "secret-state");
  Enclave.ecall enclave ~thread ~payload:sealed ~on_done:(fun outs -> out := outs) ();
  Engine.run engine;
  Alcotest.(check (list string)) "unsealed" [ "recovered:secret-state" ] !out

let test_enclave_counter_scoped () =
  let engine, platform = setup () in
  let out = ref [] in
  let program env =
    fun _ -> Enclave.emit env (Int64.to_string (Enclave.counter_increment env "seq"))
  in
  let enclave = make_enclave platform ~program in
  let thread = Resource.create engine ~name:"t" in
  Enclave.ecall enclave ~thread ~payload:"" ~on_done:(fun o -> out := !out @ o) ();
  Enclave.ecall enclave ~thread ~payload:"" ~on_done:(fun o -> out := !out @ o) ();
  Engine.run engine;
  Alcotest.(check (list string)) "monotonic" [ "1"; "2" ] !out

let test_enclave_quote_verifies () =
  let engine, platform = setup () in
  let out = ref [] in
  let enclave =
    make_enclave platform ~program:(fun env -> fun _ -> Enclave.emit env (Enclave.quote env))
  in
  let thread = Resource.create engine ~name:"t" in
  Enclave.ecall enclave ~thread ~payload:"" ~on_done:(fun o -> out := o) ();
  Engine.run engine;
  match Attestation.decode (List.hd !out) with
  | Error e -> Alcotest.fail e
  | Ok quote ->
    checkb "quote verifies" true
      (Attestation.verify ~expected_measurement:(meas "test-enclave") quote);
    Alcotest.(check string) "report data is the enclave public key"
      (Splitbft_util.Hex.encode (Enclave.public_key enclave))
      (Splitbft_util.Hex.encode quote.Attestation.report_data)

let test_cost_model_modes () =
  let d = Cost_model.default in
  let sim = Cost_model.simulation_mode d in
  checkf "sim zeroes ecall transitions" 0.0 sim.Cost_model.ecall_transition_us;
  checkf "sim zeroes ocall transitions" 0.0 sim.Cost_model.ocall_transition_us;
  checkb "sim keeps crypto costs" true (sim.Cost_model.verify_us = d.Cost_model.verify_us)

let suites =
  [ ( "tee",
      [ Alcotest.test_case "measurement identity" `Quick test_measurement_identity;
        Alcotest.test_case "monotonic counters" `Quick test_monotonic_counters;
        Alcotest.test_case "sealing key binding" `Quick test_sealing_key_binding;
        Alcotest.test_case "sealing roundtrip" `Quick test_sealing_roundtrip;
        Alcotest.test_case "attestation verify" `Quick test_attestation_verify;
        Alcotest.test_case "attestation tamper" `Quick test_attestation_tamper;
        Alcotest.test_case "attestation codec" `Quick test_attestation_codec;
        Alcotest.test_case "attestation fake platform" `Quick test_attestation_fake_platform;
        Alcotest.test_case "ecall outputs" `Quick test_enclave_ecall_outputs;
        Alcotest.test_case "closure state" `Quick test_enclave_state_isolated_in_closure;
        Alcotest.test_case "metering" `Quick test_enclave_metering;
        Alcotest.test_case "thread serializes" `Quick test_enclave_thread_serializes;
        Alcotest.test_case "crash and restart" `Quick test_enclave_crash_and_restart;
        Alcotest.test_case "subvert" `Quick test_enclave_subvert;
        Alcotest.test_case "seal from env" `Quick test_enclave_seal_env;
        Alcotest.test_case "scoped counter" `Quick test_enclave_counter_scoped;
        Alcotest.test_case "quote verifies" `Quick test_enclave_quote_verifies;
        Alcotest.test_case "cost model modes" `Quick test_cost_model_modes ] ) ]
