(* Causal tracing: context codec, recorder semantics, ring-buffer trace
   log, end-to-end propagation through real protocol runs, and the
   analyzer's integrity + reconciliation checks. *)

module Tracer = Splitbft_obs.Tracer
module Trace_ctx = Splitbft_obs.Trace_ctx
module Json = Splitbft_obs.Json
module Message = Splitbft_types.Message
module Stats = Splitbft_util.Stats
module Sim_trace = Splitbft_sim.Trace
module Network = Splitbft_sim.Network
module H = Splitbft_harness

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ----- wire context codec ----- *)

let ctx_gen =
  QCheck.Gen.(
    map3
      (fun trace span forced -> { Trace_ctx.trace; span; forced })
      (map Int64.of_int (int_bound max_int))
      (int_bound 0x3fff_ffff)
      bool)

let ctx_arb =
  QCheck.make ctx_gen ~print:(fun c -> Format.asprintf "%a" Trace_ctx.pp c)

let payload_arb = QCheck.string_of_size QCheck.Gen.(int_bound 200)

let prop_ctx_roundtrip =
  QCheck.Test.make ~count:500 ~name:"append/strip roundtrip"
    (QCheck.pair ctx_arb payload_arb)
    (fun (ctx, payload) ->
      let body, got = Trace_ctx.strip (Trace_ctx.append (Some ctx) payload) in
      String.equal body payload && got = Some ctx)

let prop_ctx_legacy =
  QCheck.Test.make ~count:500 ~name:"legacy payloads strip to themselves"
    payload_arb
    (fun payload ->
      (* tails that coincidentally match the magic are resolved one layer
         up, by codec fallback — excluded from this property *)
      let n = String.length payload in
      QCheck.assume
        (n < 2 || not (payload.[n - 2] = '\xc7' && payload.[n - 1] = 'T'));
      let body, got = Trace_ctx.strip payload in
      String.equal body payload && got = None)

let test_append_none_identity () =
  let payload = "hello" in
  checkb "physically the same string" true
    (Trace_ctx.append None payload == payload)

let sample_messages =
  let request =
    { Message.client = 3; timestamp = 7L; payload = "op"; auth = String.make 32 'a' }
  in
  [ Message.Request request;
    Message.Prepare
      { view = 1; seq = 4; digest = String.make 32 'd'; sender = 2;
        p_sig = String.make 64 's' };
    Message.Reply
      { view = 1; timestamp = 7L; client = 3; sender = 0; result = "ok";
        r_auth = String.make 32 'r' } ]

let test_message_traced_roundtrip () =
  let ctx = { Trace_ctx.trace = 0xdeadbeefL; span = 42; forced = true } in
  List.iter
    (fun msg ->
      (* without a context, encode_traced IS encode *)
      checks "byte-identical without ctx" (Message.encode msg)
        (Message.encode_traced msg);
      (match Message.decode_traced (Message.encode msg) with
      | Ok (m, ctx') ->
        checkb "plain decodes" true (m = msg);
        checkb "no ctx on plain" true (ctx' = None)
      | Error e -> Alcotest.failf "plain decode_traced: %s" e);
      let wire = Message.encode_traced ~ctx msg in
      (match Message.decode_traced wire with
      | Ok (m, ctx') ->
        checkb "traced decodes" true (m = msg);
        checkb "ctx recovered" true (ctx' = Some ctx)
      | Error e -> Alcotest.failf "traced decode_traced: %s" e);
      (* pre-tracing decoders must tolerate the trailer *)
      match Message.decode wire with
      | Ok m -> checkb "legacy decode drops trailer" true (m = msg)
      | Error e -> Alcotest.failf "legacy decode of traced wire: %s" e)
    sample_messages

(* A message whose legitimate encoding happens to END with the trailer
   magic: strip false-positives, and decode_traced must recover via the
   exact-parse fallback. *)
let test_magic_collision_fallback () =
  let msg =
    Message.Request
      { client = 1; timestamp = 9L; payload = "x";
        auth = String.make 30 'a' ^ "\xc7\x54" }
  in
  let wire = Message.encode msg in
  let n = String.length wire in
  checkb "test constructs a real collision" true
    (n >= 2 && wire.[n - 2] = '\xc7' && wire.[n - 1] = '\x54');
  let _, misdetected = Trace_ctx.strip wire in
  checkb "strip alone misdetects (documented)" true (misdetected <> None);
  match Message.decode_traced wire with
  | Ok (m, ctx) ->
    checkb "fallback recovers the message" true (m = msg);
    checkb "and reports no context" true (ctx = None)
  | Error e -> Alcotest.failf "collision fallback failed: %s" e

(* ----- recorder semantics ----- *)

let find_span tracer id =
  List.find (fun (s : Tracer.span) -> s.id = id) (Tracer.spans tracer)

let test_finish_idempotent () =
  let tr = Tracer.create () in
  let id =
    Tracer.open_span tr ~trace:1L ~name:"s" ~cat:"c" ~pid:0 ~tid:"t" ~at:10.0 ()
  in
  Tracer.finish tr id ~at:25.0;
  Tracer.finish tr id ~at:99.0;
  let s = find_span tr id in
  Alcotest.(check (float 1e-9)) "first finish wins" 15.0 s.Tracer.dur

let test_set_start_and_args () =
  let tr = Tracer.create () in
  let id =
    Tracer.open_span tr ~trace:1L ~name:"s" ~cat:"c" ~pid:0 ~tid:"t" ~at:50.0 ()
  in
  Tracer.set_start tr id ~at:20.0;
  Tracer.add_arg tr id "k" 1.5;
  Tracer.add_arg tr id "k" 2.5;
  Tracer.finish tr id ~at:60.0;
  let s = find_span tr id in
  Alcotest.(check (float 1e-9)) "back-dated" 20.0 s.Tracer.start;
  Alcotest.(check (float 1e-9)) "duration from new start" 40.0 s.Tracer.dur;
  Alcotest.(check (float 1e-9)) "args accumulate" 4.0
    (List.assoc "k" s.Tracer.args)

let test_capacity_bound () =
  let tr = Tracer.create ~capacity:2 () in
  let a = Tracer.open_span tr ~trace:1L ~name:"a" ~cat:"c" ~pid:0 ~tid:"t" ~at:0.0 () in
  let _b = Tracer.open_span tr ~trace:1L ~name:"b" ~cat:"c" ~pid:0 ~tid:"t" ~at:0.0 () in
  let c = Tracer.open_span tr ~trace:1L ~name:"c" ~cat:"c" ~pid:0 ~tid:"t" ~at:0.0 () in
  checki "over capacity returns -1" (-1) c;
  checki "stored" 2 (Tracer.span_count tr);
  checki "dropped counted" 1 (Tracer.dropped tr);
  (* -1 is inert *)
  Tracer.finish tr c ~at:5.0;
  Tracer.add_arg tr c "k" 1.0;
  Tracer.finish tr a ~at:3.0;
  Alcotest.(check (float 1e-9)) "live spans unaffected" 3.0
    (find_span tr a).Tracer.dur

let test_sampling_and_trace_ids () =
  let tr = Tracer.create ~sample_every:4 () in
  checkb "multiples sampled" true (Tracer.sampled_ts tr 8L);
  checkb "others not" false (Tracer.sampled_ts tr 7L);
  Alcotest.(check int64) "client trace is deterministic"
    (Tracer.client_trace ~client:5 ~ts:9L)
    (Tracer.client_trace ~client:5 ~ts:9L);
  checkb "forced ids tagged" true
    (Int64.logand (Tracer.fresh_forced_trace tr) 0x4000_0000_0000_0000L <> 0L);
  checkb "orphan ids tagged" true
    (Int64.logand (Tracer.fresh_orphan_trace tr) 0x2000_0000_0000_0000L <> 0L)

(* ----- sim trace ring buffer ----- *)

let test_ring_eviction_and_fingerprint () =
  let record n t =
    for i = 1 to n do
      Sim_trace.record t ~time:(float_of_int i) ~label:"e" (string_of_int i)
    done
  in
  let small = Sim_trace.create ~capacity:4 () in
  let large = Sim_trace.create ~capacity:1000 () in
  record 10 small;
  record 10 large;
  checki "ring retains the newest window" 4 (Sim_trace.length small);
  checki "unbounded-enough keeps all" 10 (Sim_trace.length large);
  (match Sim_trace.entries small with
  | { Sim_trace.detail = d; _ } :: _ -> checks "oldest retained is #7" "7" d
  | [] -> Alcotest.fail "empty ring");
  checks "fingerprint unaffected by eviction" (Sim_trace.fingerprint large)
    (Sim_trace.fingerprint small);
  let reordered = Sim_trace.create ~capacity:4 () in
  Sim_trace.record reordered ~time:2.0 ~label:"e" "2";
  Sim_trace.record reordered ~time:1.0 ~label:"e" "1";
  checkb "fingerprint is order-sensitive" false
    (String.equal
       (Sim_trace.fingerprint reordered)
       (let t = Sim_trace.create ~capacity:4 () in
        Sim_trace.record t ~time:1.0 ~label:"e" "1";
        Sim_trace.record t ~time:2.0 ~label:"e" "2";
        Sim_trace.fingerprint t))

let test_ring_mirrors_instants () =
  let tracer = Tracer.create () in
  let t = Sim_trace.create ~tracer ~pid:7 () in
  Sim_trace.record t ~time:5.0 ~label:"net" "delivered";
  match Json.member "traceEvents" (Tracer.to_json tracer) with
  | Some (Json.List events) ->
    checkb "instant mirrored into the trace export" true
      (List.exists
         (fun ev ->
           Json.member "ph" ev = Some (Json.Str "i")
           && Json.member "name" ev = Some (Json.Str "net"))
         events)
  | _ -> Alcotest.fail "no traceEvents"

(* ----- stats reservoir bound ----- *)

let test_stats_reservoir_bounded () =
  let s = Stats.create ~cap:128 () in
  for i = 1 to 10_000 do
    Stats.add s (float_of_int i)
  done;
  checki "count exact past the cap" 10_000 (Stats.count s);
  Alcotest.(check (float 1e-6)) "total exact" 50_005_000.0 (Stats.total s);
  Alcotest.(check (float 1e-6)) "min exact" 1.0 (Stats.min s);
  Alcotest.(check (float 1e-6)) "max exact" 10_000.0 (Stats.max s);
  let p50 = Stats.percentile s 50.0 in
  checkb "median is a plausible reservoir estimate" true
    (p50 >= 1.0 && p50 <= 10_000.0)

(* ----- end-to-end propagation ----- *)

let run_traced ?(sample_every = 1) ?(duration_us = 300_000.0) ?(clients = 3)
    ?(setup = fun (_ : H.Cluster.t) -> ()) protocol =
  let tracer = Tracer.create ~sample_every () in
  let params =
    { (H.Cluster.default_params protocol) with H.Cluster.seed = 11L }
  in
  let cluster = H.Cluster.create ~tracer params in
  setup cluster;
  let spec =
    { H.Workload.default_spec with
      H.Workload.clients;
      warmup_us = 0.0;
      duration_us }
  in
  let result = H.Workload.run cluster spec in
  (tracer, cluster, result)

(* Deterministic outage: drop every client->service message inside the
   window, so each in-flight request at the start of it must retransmit
   (the client retry timeout is 400 ms).  Sessions set up at time 0 are
   unaffected. *)
let client_outage ~from_us ~until_us cluster =
  let module Engine = Splitbft_sim.Engine in
  let net = H.Cluster.network cluster in
  let engine = H.Cluster.engine cluster in
  ignore
    (Engine.schedule engine ~delay:from_us ~label:"test:outage" (fun () ->
         Network.set_filter net
           (Some
              (fun ~src ~dst:_ _ ->
                if src >= 1000 then Network.Drop else Network.Deliver))));
  ignore
    (Engine.schedule engine ~delay:until_us ~label:"test:heal" (fun () ->
         Network.set_filter net None))

let test_splitbft_propagation () =
  let tracer, cluster, result = run_traced Splitbft_proto.Proto_splitbft.protocol in
  checkb "requests completed" true (result.H.Workload.completed_total > 0);
  let report = H.Trace_report.analyze tracer in
  checki "no broken causal trees" 0 report.H.Trace_report.broken_traces;
  checkb "client roots recorded" true (report.H.Trace_report.client_traces > 0);
  let has cat name =
    List.exists
      (fun p ->
        String.equal p.H.Trace_report.cat cat
        && String.equal p.H.Trace_report.name name)
      report.H.Trace_report.phases
  in
  checkb "client root phase" true (has "client" "request");
  checkb "broker rx phase" true (has "broker" "host:rx");
  checkb "broker tx phase" true (has "broker" "host:tx");
  List.iter
    (fun lane ->
      checkb (lane ^ " compartment phase") true (has "enclave" ("ecall:" ^ lane)))
    [ "preparation"; "confirmation"; "execution" ];
  (* full sampling: span-attributed cost must reconcile with the registry *)
  (match H.Trace_report.reconcile report (H.Cluster.obs cluster) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reconciliation: %s" e);
  (* and the export round-trips through the parser as valid Trace Event JSON *)
  match Json.parse (Json.to_string (Tracer.to_json tracer)) with
  | Error e -> Alcotest.failf "export does not re-parse: %s" e
  | Ok doc -> (
    match H.Trace_report.validate doc with
    | Ok () -> ()
    | Error e -> Alcotest.failf "export invalid: %s" e)

let test_pipelined_pool_propagation () =
  (* lanes>1 + exec_workers>1 is the configuration that produces orphan
     ecall spans: lane-sharded checkpoint and pool ecalls run outside any
     client request, so they land under fresh orphan roots.  The analyzer
     must keep every client tree intact anyway — an orphan is a labelled
     root, never a dangling parent edge — and reconciliation must still
     account for the orphan-attributed ecall time. *)
  let tracer, cluster, result =
    run_traced ~duration_us:500_000.0 ~clients:6
      (Splitbft_proto.Proto_splitbft.make ~lanes:4 ~exec_workers:4 ())
  in
  checkb "requests completed" true (result.H.Workload.completed_total > 0);
  let report = H.Trace_report.analyze tracer in
  checkb "pipelining produced orphan ecall spans" true
    (report.H.Trace_report.orphan_traces > 0);
  checki "client trees stay intact despite orphans" 0
    report.H.Trace_report.broken_traces;
  checkb "client roots still recorded" true (report.H.Trace_report.client_traces > 0);
  (* execution ecalls still attribute to client trees, not only orphans *)
  checkb "execution ecalls present" true
    (List.exists
       (fun p ->
         String.equal p.H.Trace_report.cat "enclave"
         && String.equal p.H.Trace_report.name "ecall:execution")
       report.H.Trace_report.phases);
  (* full byte reconciliation is NOT asserted here: pool-run ecalls count
     their copies in the registry but execute outside the issuing span, so
     span-attributed bytes undercount under exec_workers>1.  The export must
     still be a valid trace document. *)
  ignore cluster;
  match Json.parse (Json.to_string (Tracer.to_json tracer)) with
  | Error e -> Alcotest.failf "export does not re-parse: %s" e
  | Ok doc -> (
    match H.Trace_report.validate doc with
    | Ok () -> ()
    | Error e -> Alcotest.failf "export invalid: %s" e)

let test_viewchange_trace () =
  (* crash the PBFT primary: the suspect timers must produce forced roots
     and the view-change messages must ride those traces *)
  let tracer = Tracer.create () in
  let s =
    match H.Scenarios.find "pbft/crash-primary" with
    | Some s -> s
    | None -> Alcotest.fail "scenario missing"
  in
  let o = H.Scenarios.run ~seed:42L ~tracer s in
  checkb "scenario still matches the paper" true (H.Scenarios.matches_expectation o);
  let report = H.Trace_report.analyze tracer in
  checkb "forced roots from suspect timers" true
    (report.H.Trace_report.forced_traces > 0);
  checki "view change kept trees intact" 0 report.H.Trace_report.broken_traces;
  checkb "viewchange handling was traced" true
    (List.exists
       (fun p -> String.equal p.H.Trace_report.name "pbft:viewchange")
       report.H.Trace_report.phases)

let test_recovery_trace () =
  let tracer = Tracer.create () in
  let s =
    match H.Scenarios.find "splitbft/crash-recover" with
    | Some s -> s
    | None -> Alcotest.fail "scenario missing"
  in
  let o = H.Scenarios.run ~seed:42L ~tracer s in
  checkb "scenario still matches the paper" true (H.Scenarios.matches_expectation o);
  let report = H.Trace_report.analyze tracer in
  checki "recovery kept trees intact" 0 report.H.Trace_report.broken_traces;
  let recovery =
    List.find_opt
      (fun p -> String.equal p.H.Trace_report.cat "broker.recovery")
      report.H.Trace_report.phases
  in
  match recovery with
  | None -> Alcotest.fail "no recovery root span"
  | Some p ->
    checkb "recovery root measures the recovery" true (p.H.Trace_report.total_dur_us > 0.0);
    (match H.Trace_report.reconcile report (H.Cluster.obs o.H.Scenarios.cluster) with
    | Ok () -> ()
    | Error e -> Alcotest.failf "reconciliation after recovery: %s" e)

let test_retransmit_joins_trace () =
  (* outage-forced retransmissions must reuse the original trace (same
     deterministic id), never fork a second root *)
  let tracer, _cluster, result =
    run_traced ~duration_us:1_500_000.0
      ~setup:(client_outage ~from_us:200_000.0 ~until_us:500_000.0)
      Splitbft_proto.Proto_splitbft.protocol
  in
  checkb "requests completed despite the outage" true
    (result.H.Workload.completed_total > 0);
  let report = H.Trace_report.analyze tracer in
  checki "no broken causal trees" 0 report.H.Trace_report.broken_traces;
  let roots =
    List.filter
      (fun (s : Tracer.span) -> String.equal s.Tracer.cat "client")
      (Tracer.spans tracer)
  in
  checki "exactly one root per client trace"
    report.H.Trace_report.client_traces (List.length roots);
  checkb "some request actually retransmitted" true
    (List.exists
       (fun (s : Tracer.span) ->
         match List.assoc_opt "retransmits" s.Tracer.args with
         | Some r -> r > 0.0
         | None -> false)
       roots)

let test_slow_request_promoted () =
  (* head sampling off (huge N): only retransmitted-slow requests get
     (forced) roots, so any client trace present proves promotion *)
  let tracer, _cluster, result =
    run_traced ~sample_every:1_000_000 ~duration_us:1_500_000.0
      ~setup:(client_outage ~from_us:200_000.0 ~until_us:500_000.0)
      Splitbft_proto.Proto_splitbft.protocol
  in
  checkb "requests completed despite the outage" true
    (result.H.Workload.completed_total > 0);
  let report = H.Trace_report.analyze tracer in
  checkb "slow requests were promoted into traces" true
    (report.H.Trace_report.client_traces > 0);
  checki "promoted trees are intact" 0 report.H.Trace_report.broken_traces;
  let roots =
    List.filter
      (fun (s : Tracer.span) -> String.equal s.Tracer.cat "client")
      (Tracer.spans tracer)
  in
  checkb "every promoted root saw a retransmit" true
    (List.for_all
       (fun (s : Tracer.span) ->
         match List.assoc_opt "retransmits" s.Tracer.args with
         | Some r -> r > 0.0
         | None -> s.Tracer.dur < 0.0 (* still in flight at end of run *))
       roots)

let test_tracing_off_costs_nothing () =
  (* a tracer that samples nothing must leave the simulation byte-identical
     to a run with no tracer at all: no spans, no wire trailers, identical
     registry snapshot.  (A sampling tracer legitimately differs — trailers
     add wire bytes.) *)
  let snapshot tracer =
    let params =
      { (H.Cluster.default_params Splitbft_proto.Proto_splitbft.protocol) with H.Cluster.seed = 5L }
    in
    let cluster = H.Cluster.create ?tracer params in
    let spec =
      { H.Workload.default_spec with
        H.Workload.clients = 2;
        warmup_us = 0.0;
        duration_us = 200_000.0 }
    in
    ignore (H.Workload.run cluster spec);
    Splitbft_obs.Registry.to_json_string (H.Cluster.obs cluster)
  in
  let plain = snapshot None in
  let idle = Tracer.create ~sample_every:1_000_000 ~record_orphans:false () in
  let sampled_off = snapshot (Some idle) in
  checks "virtual-time behaviour is identical" plain sampled_off;
  checki "and nothing was recorded" 0 (Tracer.span_count idle)

(* ----- analyzer validation on crafted documents ----- *)

let test_validate_rejects_defects () =
  let doc events spans =
    Json.Obj
      [ ("traceEvents", Json.List events);
        ("otherData",
         Json.Obj [ ("schema", Json.Str "splitbft.trace/v1"); ("spans", Json.Int spans) ]) ]
  in
  let x ?parent ~id ~ts () =
    Json.Obj
      [ ("ph", Json.Str "X"); ("name", Json.Str "s"); ("cat", Json.Str "c");
        ("pid", Json.Int 0); ("tid", Json.Int 1); ("ts", Json.Float ts);
        ("dur", Json.Float 1.0);
        ("args",
         Json.Obj
           ([ ("trace", Json.Str "0000000000000001"); ("id", Json.Int id) ]
           @ match parent with Some p -> [ ("parent", Json.Int p) ] | None -> [])) ]
  in
  let ok = doc [ x ~id:0 ~ts:10.0 (); x ~parent:0 ~id:1 ~ts:12.0 () ] 2 in
  (match H.Trace_report.validate ok with
  | Ok () -> ()
  | Error e -> Alcotest.failf "well-formed doc rejected: %s" e);
  let missing_parent = doc [ x ~parent:9 ~id:1 ~ts:12.0 () ] 1 in
  checkb "missing parent rejected" true
    (Result.is_error (H.Trace_report.validate missing_parent));
  let time_travel = doc [ x ~id:0 ~ts:10.0 (); x ~parent:0 ~id:1 ~ts:5.0 () ] 2 in
  checkb "child before parent rejected" true
    (Result.is_error (H.Trace_report.validate time_travel));
  let bad_count = doc [ x ~id:0 ~ts:10.0 () ] 7 in
  checkb "span-count mismatch rejected" true
    (Result.is_error (H.Trace_report.validate bad_count));
  checkb "unschema'd doc rejected" true
    (Result.is_error
       (H.Trace_report.validate (Json.Obj [ ("traceEvents", Json.List []) ])))

let suites =
  [ ( "trace.ctx",
      [ QCheck_alcotest.to_alcotest prop_ctx_roundtrip;
        QCheck_alcotest.to_alcotest prop_ctx_legacy;
        Alcotest.test_case "append None is identity" `Quick test_append_none_identity;
        Alcotest.test_case "message traced roundtrip" `Quick test_message_traced_roundtrip;
        Alcotest.test_case "magic collision fallback" `Quick test_magic_collision_fallback ] );
    ( "trace.recorder",
      [ Alcotest.test_case "finish is idempotent" `Quick test_finish_idempotent;
        Alcotest.test_case "set_start and arg accumulation" `Quick test_set_start_and_args;
        Alcotest.test_case "capacity bound" `Quick test_capacity_bound;
        Alcotest.test_case "sampling and trace ids" `Quick test_sampling_and_trace_ids ] );
    ( "trace.simlog",
      [ Alcotest.test_case "ring eviction keeps fingerprint" `Quick
          test_ring_eviction_and_fingerprint;
        Alcotest.test_case "records mirror as instants" `Quick test_ring_mirrors_instants ] );
    ( "trace.stats",
      [ Alcotest.test_case "reservoir stays bounded" `Quick test_stats_reservoir_bounded ] );
    ( "trace.e2e",
      [ Alcotest.test_case "splitbft propagation + reconciliation" `Quick
          test_splitbft_propagation;
        Alcotest.test_case "pipelined lanes + worker pool keep trees intact" `Quick
          test_pipelined_pool_propagation;
        Alcotest.test_case "view change produces forced traces" `Quick test_viewchange_trace;
        Alcotest.test_case "crash recovery is traced" `Quick test_recovery_trace;
        Alcotest.test_case "retransmissions join the original trace" `Quick
          test_retransmit_joins_trace;
        Alcotest.test_case "slow requests promoted at retransmit" `Quick
          test_slow_request_promoted;
        Alcotest.test_case "tracing off perturbs nothing" `Quick
          test_tracing_off_costs_nothing ] );
    ( "trace.analyzer",
      [ Alcotest.test_case "validator rejects defects" `Quick test_validate_rejects_defects ] ) ]
