module M = Splitbft_types.Message
module Ids = Splitbft_types.Ids
module Validation = Splitbft_types.Validation
module Newview_logic = Splitbft_consensus.Newview
module Client_dedup = Splitbft_types.Client_dedup
module Session = Splitbft_types.Session
module Keys = Splitbft_types.Keys
module Addr = Splitbft_types.Addr
module Signature = Splitbft_crypto.Signature
module Rng = Splitbft_util.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ----- generators ----- *)

let gen_request =
  QCheck.Gen.(
    map4
      (fun client ts payload auth -> { M.client; timestamp = Int64.of_int ts; payload; auth })
      (0 -- 200) (0 -- 10_000) (string_size (0 -- 40)) (string_size (0 -- 40)))

let gen_batch = QCheck.Gen.(list_size (0 -- 5) gen_request)

let gen_msg =
  QCheck.Gen.(
    oneof
      [ map (fun r -> M.Request r) gen_request;
        map4
          (fun view seq batch sender -> M.Preprepare { view; seq; batch; sender; pp_sig = "s" })
          (0 -- 5) (0 -- 100) gen_batch (0 -- 3);
        map4
          (fun view seq digest sender -> M.Prepare { view; seq; digest; sender; p_sig = "s" })
          (0 -- 5) (0 -- 100) (string_size (return 32)) (0 -- 3);
        map4
          (fun view seq digest sender -> M.Commit { view; seq; digest; sender; c_sig = "s" })
          (0 -- 5) (0 -- 100) (string_size (return 32)) (0 -- 3);
        map3
          (fun seq digest sender ->
            M.Checkpoint { seq; state_digest = digest; sender; ck_sig = "s" })
          (0 -- 100) (string_size (return 32)) (0 -- 3);
        map3
          (fun client d requester ->
            if client mod 2 = 0 then M.Batch_fetch { bf_digest = d; bf_requester = requester }
            else M.Session_init { si_client = client })
          (0 -- 10) (string_size (return 32)) (0 -- 3) ])

let gen_prepare_rec =
  QCheck.Gen.(
    map4
      (fun view seq digest sender -> { M.view; seq; digest; sender; p_sig = "sig" })
      (0 -- 3) (0 -- 50) (string_size (return 32)) (0 -- 3))

let gen_proof =
  QCheck.Gen.(
    map2
      (fun (view, seq, digest, sender) prepares ->
        { M.proof_preprepare =
            { M.pd_view = view; pd_seq = seq; pd_digest = digest; pd_sender = sender;
              pd_sig = "s" };
          proof_prepares = prepares })
      (tup4 (0 -- 3) (0 -- 50) (string_size (return 32)) (0 -- 3))
      (list_size (0 -- 3) gen_prepare_rec))

let gen_viewchange =
  QCheck.Gen.(
    map4
      (fun v stable proofs sender ->
        { M.vc_new_view = v;
          vc_last_stable = stable;
          vc_checkpoint_proof = [];
          vc_prepared = proofs;
          vc_sender = sender;
          vc_sig = "vcsig" })
      (1 -- 4) (0 -- 20) (list_size (0 -- 3) gen_proof) (0 -- 3))

let gen_newview =
  QCheck.Gen.(
    map3
      (fun v vcs sender ->
        { M.nv_view = v; nv_viewchanges = vcs; nv_preprepares = []; nv_sender = sender;
          nv_sig = "nvsig" })
      (1 -- 4) (list_size (0 -- 3) gen_viewchange) (0 -- 3))

let prop_viewchange_roundtrip =
  QCheck.Test.make ~name:"viewchange codec roundtrip (nested certs)" ~count:200
    (QCheck.make gen_viewchange)
    (fun vc ->
      match M.decode (M.encode (M.Viewchange vc)) with
      | Ok (M.Viewchange vc') -> vc = vc'
      | _ -> false)

let prop_newview_roundtrip =
  QCheck.Test.make ~name:"newview codec roundtrip (doubly nested)" ~count:100
    (QCheck.make gen_newview)
    (fun nv ->
      match M.decode (M.encode (M.Newview nv)) with
      | Ok (M.Newview nv') -> nv = nv'
      | _ -> false)

let prop_signing_bytes_ignore_signature =
  QCheck.Test.make ~name:"signing bytes independent of signature field" ~count:100
    (QCheck.make gen_viewchange)
    (fun vc ->
      String.equal
        (M.viewchange_signing_bytes vc)
        (M.viewchange_signing_bytes { vc with M.vc_sig = "different" }))

let arbitrary_msg = QCheck.make gen_msg

let prop_message_roundtrip =
  QCheck.Test.make ~name:"message codec roundtrip" ~count:300 arbitrary_msg (fun msg ->
      match M.decode (M.encode msg) with Ok m -> m = msg | Error _ -> false)

let prop_decode_total =
  QCheck.Test.make ~name:"message decode total on junk" ~count:300 QCheck.string
    (fun junk -> match M.decode junk with Ok _ | Error _ -> true)

let test_peek_tag () =
  let msg = M.Request { M.client = 1; timestamp = 2L; payload = "p"; auth = "a" } in
  Alcotest.(check (option int)) "peek" (Some 1) (M.peek_tag (M.encode msg));
  Alcotest.(check (option int)) "empty" None (M.peek_tag "")

let test_summarize_shares_signature () =
  let kp = Signature.derive ~seed:"prep" in
  let pp = { M.view = 1; seq = 2; batch = []; sender = 0; pp_sig = "" } in
  let pp = { pp with M.pp_sig = Signature.sign kp.Signature.secret (M.preprepare_signing_bytes pp) } in
  let pd = M.summarize pp in
  checkb "same signature verifies on digest form" true
    (Signature.verify ~public:kp.Signature.public
       ~msg:(M.preprepare_digest_signing_bytes pd) ~signature:pd.M.pd_sig)

let test_empty_batch_digest () =
  Alcotest.(check string) "constant" (M.digest_of_batch []) M.empty_batch_digest

(* ----- validation ----- *)

let enclave_keys = Array.init 4 (fun i -> Signature.derive ~seed:(Printf.sprintf "val-%d" i))
let lookup i = if i >= 0 && i < 4 then Some enclave_keys.(i).Signature.public else None

let signed_prepare ~view ~seq ~digest ~sender =
  let p = { M.view; seq; digest; sender; p_sig = "" } in
  { p with M.p_sig = Signature.sign enclave_keys.(sender).Signature.secret (M.prepare_signing_bytes p) }

let signed_pd ~view ~seq ~digest ~sender =
  let pd = { M.pd_view = view; pd_seq = seq; pd_digest = digest; pd_sender = sender; pd_sig = "" } in
  { pd with
    M.pd_sig =
      Signature.sign enclave_keys.(sender).Signature.secret (M.preprepare_digest_signing_bytes pd) }

let digest = String.make 32 'd'

let test_prepare_cert () =
  let pd = signed_pd ~view:0 ~seq:1 ~digest ~sender:0 in
  let p1 = signed_prepare ~view:0 ~seq:1 ~digest ~sender:1 in
  let p2 = signed_prepare ~view:0 ~seq:1 ~digest ~sender:2 in
  checkb "2f prepares complete" true (Validation.prepare_cert_complete ~f:1 pd [ p1; p2 ]);
  checkb "too few" false (Validation.prepare_cert_complete ~f:1 pd [ p1 ]);
  checkb "duplicate sender rejected" false
    (Validation.prepare_cert_complete ~f:1 pd [ p1; p1 ]);
  let own = signed_prepare ~view:0 ~seq:1 ~digest ~sender:0 in
  checkb "primary prepare does not count" false
    (Validation.prepare_cert_complete ~f:1 pd [ p1; own ]);
  let other = signed_prepare ~view:0 ~seq:1 ~digest:(String.make 32 'x') ~sender:2 in
  checkb "digest mismatch" false (Validation.prepare_cert_complete ~f:1 pd [ p1; other ])

let test_verify_prepared_proof () =
  let pd = signed_pd ~view:0 ~seq:1 ~digest ~sender:0 in
  let p1 = signed_prepare ~view:0 ~seq:1 ~digest ~sender:1 in
  let p2 = signed_prepare ~view:0 ~seq:1 ~digest ~sender:2 in
  let proof = { M.proof_preprepare = pd; proof_prepares = [ p1; p2 ] } in
  checkb "valid proof" true (Validation.verify_prepared_proof ~f:1 lookup proof);
  let forged = { proof with M.proof_prepares = [ p1; { p2 with M.p_sig = String.make 32 'z' } ] } in
  checkb "bad signature in proof" false (Validation.verify_prepared_proof ~f:1 lookup forged)

let test_commit_quorum () =
  let commit sender =
    let c = { M.view = 0; seq = 1; digest; sender; c_sig = "" } in
    { c with M.c_sig = Signature.sign enclave_keys.(sender).Signature.secret (M.commit_signing_bytes c) }
  in
  checkb "2f+1 commits" true
    (Validation.commit_quorum_complete ~quorum:3 ~view:0 ~seq:1 ~digest
       [ commit 0; commit 1; commit 2 ]);
  checkb "distinct senders required" false
    (Validation.commit_quorum_complete ~quorum:3 ~view:0 ~seq:1 ~digest
       [ commit 0; commit 0; commit 2 ]);
  checkb "wrong view" false
    (Validation.commit_quorum_complete ~quorum:3 ~view:1 ~seq:1 ~digest
       [ commit 0; commit 1; commit 2 ])

let test_checkpoint_quorum () =
  let ck sender seq =
    let c = { M.seq; state_digest = digest; sender; ck_sig = "" } in
    { c with M.ck_sig = Signature.sign enclave_keys.(sender).Signature.secret (M.checkpoint_signing_bytes c) }
  in
  checkb "quorum" true
    (Validation.checkpoint_quorum_complete ~quorum:3 [ ck 0 10; ck 1 10; ck 2 10 ]);
  Alcotest.(check (option int)) "proven seq" (Some 10)
    (Validation.checkpoint_quorum_seq ~quorum:3 [ ck 0 10; ck 1 10; ck 2 10 ]);
  Alcotest.(check (option int)) "mixed seqs, no quorum" None
    (Validation.checkpoint_quorum_seq ~quorum:3 [ ck 0 10; ck 1 20; ck 2 30 ])

let test_distinct_senders () =
  checkb "distinct" true (Validation.distinct_senders [ 1; 2; 3 ]);
  checkb "duplicate" false (Validation.distinct_senders [ 1; 2; 1 ]);
  checkb "empty" true (Validation.distinct_senders [])

(* ----- newview logic ----- *)

let vc ~sender ~stable ~prepared =
  { M.vc_new_view = 1;
    vc_last_stable = stable;
    vc_checkpoint_proof = [];
    vc_prepared = prepared;
    vc_sender = sender;
    vc_sig = "" }

let proof ~view ~seq ~digest =
  { M.proof_preprepare =
      { M.pd_view = view; pd_seq = seq; pd_digest = digest; pd_sender = 0; pd_sig = "" };
    proof_prepares = [] }

let test_newview_compute_gaps () =
  let d5 = String.make 32 '5' and d7 = String.make 32 '7' in
  let vcs =
    [ vc ~sender:0 ~stable:4 ~prepared:[ proof ~view:0 ~seq:5 ~digest:d5 ];
      vc ~sender:1 ~stable:4 ~prepared:[ proof ~view:0 ~seq:7 ~digest:d7 ];
      vc ~sender:2 ~stable:3 ~prepared:[] ]
  in
  let min_s, max_s, pds = Newview_logic.compute ~view:1 ~sender:1 vcs in
  checki "min_s is max stable" 4 min_s;
  checki "max_s" 7 max_s;
  checki "covers (min,max]" 3 (List.length pds);
  let seq6 = List.find (fun (pd : M.preprepare_digest) -> pd.M.pd_seq = 6) pds in
  Alcotest.(check string) "gap filled with noop" M.empty_batch_digest seq6.M.pd_digest;
  let seq5 = List.find (fun (pd : M.preprepare_digest) -> pd.M.pd_seq = 5) pds in
  Alcotest.(check string) "prepared digest kept" d5 seq5.M.pd_digest

let test_newview_highest_view_wins () =
  let d_old = String.make 32 'o' and d_new = String.make 32 'n' in
  let vcs =
    [ vc ~sender:0 ~stable:0 ~prepared:[ proof ~view:1 ~seq:1 ~digest:d_old ];
      vc ~sender:1 ~stable:0 ~prepared:[ proof ~view:2 ~seq:1 ~digest:d_new ] ]
  in
  let _, _, pds = Newview_logic.compute ~view:3 ~sender:0 vcs in
  Alcotest.(check string) "highest view proof wins" d_new
    (List.hd pds).M.pd_digest

let test_newview_matches () =
  let vcs = [ vc ~sender:0 ~stable:0 ~prepared:[ proof ~view:0 ~seq:1 ~digest ] ] in
  let _, _, pds = Newview_logic.compute ~view:1 ~sender:2 vcs in
  checkb "matches itself" true (Newview_logic.matches ~expected:pds ~actual:pds);
  let tampered =
    List.map (fun pd -> { pd with M.pd_digest = String.make 32 't' }) pds
  in
  checkb "tampered rejected" false (Newview_logic.matches ~expected:pds ~actual:tampered);
  checkb "length mismatch" false (Newview_logic.matches ~expected:pds ~actual:[])

(* ----- client dedup ----- *)

let test_dedup_basic () =
  let d = Client_dedup.create () in
  checkb "fresh not executed" false (Client_dedup.executed d 1L);
  Client_dedup.record d 1L None;
  checkb "recorded" true (Client_dedup.executed d 1L);
  Alcotest.(check int64) "floor advanced" 1L (Client_dedup.floor_ts d)

let test_dedup_out_of_order () =
  let d = Client_dedup.create () in
  Client_dedup.record d 3L None;
  Client_dedup.record d 1L None;
  checkb "gap not executed" false (Client_dedup.executed d 2L);
  Alcotest.(check int64) "floor waits for gap" 1L (Client_dedup.floor_ts d);
  Client_dedup.record d 2L None;
  Alcotest.(check int64) "floor jumps over recorded" 3L (Client_dedup.floor_ts d);
  checki "nothing pending" 0 (Client_dedup.pending_above_floor d)

let test_dedup_rejects_duplicates () =
  let d = Client_dedup.create () in
  Client_dedup.record d 5L None;
  checkb "raises" true
    (try
       Client_dedup.record d 5L None;
       false
     with Invalid_argument _ -> true)

let prop_dedup_executes_once =
  QCheck.Test.make ~name:"dedup: any arrival order executes each ts once" ~count:200
    QCheck.(list_of_size Gen.(1 -- 30) (1 -- 30))
    (fun raw ->
      let d = Client_dedup.create () in
      let executed = Hashtbl.create 16 in
      List.iter
        (fun ts ->
          let ts = Int64.of_int ts in
          if not (Client_dedup.executed d ts) then begin
            Client_dedup.record d ts None;
            Hashtbl.replace executed ts (1 + Option.value ~default:0 (Hashtbl.find_opt executed ts))
          end)
        raw;
      Hashtbl.fold (fun _ n acc -> acc && n = 1) executed true
      && List.for_all (fun ts -> Client_dedup.executed d (Int64.of_int ts)) raw)

let test_dedup_reply_cache () =
  let d = Client_dedup.create () in
  let reply ts =
    { M.view = 0; timestamp = ts; client = 1; sender = 0; result = "r"; r_auth = "" }
  in
  Client_dedup.record d 1L (Some (reply 1L));
  Client_dedup.record d 3L (Some (reply 3L));
  checkb "cached above floor" true (Client_dedup.cached_reply d 3L <> None);
  checkb "cached at floor" true (Client_dedup.cached_reply d 1L <> None)

(* ----- session crypto ----- *)

let session_keys = Session.generate (Rng.create 12L)

let test_session_op_roundtrip () =
  let ct = Session.encrypt_op session_keys ~client:3 ~timestamp:9L "operation" in
  checkb "ciphertext hides op" false (String.equal ct "operation");
  (match Session.decrypt_op session_keys ~client:3 ~timestamp:9L ct with
  | Ok op -> Alcotest.(check string) "roundtrip" "operation" op
  | Error e -> Alcotest.fail e);
  checkb "wrong binding fails" true
    (Result.is_error (Session.decrypt_op session_keys ~client:4 ~timestamp:9L ct))

let test_session_request_auth () =
  let r = { M.client = 3; timestamp = 9L; payload = "ct"; auth = "" } in
  let r = Session.authenticate_request session_keys r in
  checkb "auth ok" true (Session.request_auth_ok session_keys r);
  checkb "tampered payload" false
    (Session.request_auth_ok session_keys { r with M.payload = "ct2" })

let test_session_result_roundtrip () =
  let ct = Session.encrypt_result session_keys ~client:3 ~timestamp:9L ~replica:2 "out" in
  (match Session.decrypt_result session_keys ~client:3 ~timestamp:9L ~replica:2 ct with
  | Ok v -> Alcotest.(check string) "roundtrip" "out" v
  | Error e -> Alcotest.fail e);
  checkb "replica binding" true
    (Result.is_error (Session.decrypt_result session_keys ~client:3 ~timestamp:9L ~replica:1 ct))

let test_session_provision_forms () =
  (match Session.decode_provision (Session.encode_for_execution session_keys) with
  | Ok k ->
    checkb "exec gets enc key" true (String.length k.Session.enc > 0);
    Alcotest.(check string) "auth key" session_keys.Session.auth k.Session.auth
  | Error e -> Alcotest.fail e);
  match Session.decode_provision (Session.encode_for_preparation session_keys) with
  | Ok k -> checki "prep gets no enc key" 0 (String.length k.Session.enc)
  | Error e -> Alcotest.fail e

(* ----- authenticators / addresses ----- *)

let test_authenticator () =
  let auth = Keys.make_authenticator ~protocol:"pbft" ~client:5 ~n:4 "bytes" in
  for replica = 0 to 3 do
    checkb "entry verifies" true
      (Keys.check_authenticator ~protocol:"pbft" ~client:5 ~replica ~msg:"bytes" ~auth)
  done;
  checkb "wrong message" false
    (Keys.check_authenticator ~protocol:"pbft" ~client:5 ~replica:0 ~msg:"other" ~auth);
  checkb "wrong client" false
    (Keys.check_authenticator ~protocol:"pbft" ~client:6 ~replica:0 ~msg:"bytes" ~auth);
  checkb "protocol domain separation" false
    (Keys.check_authenticator ~protocol:"minbft" ~client:5 ~replica:0 ~msg:"bytes" ~auth);
  checkb "replica out of range" false
    (Keys.check_authenticator ~protocol:"pbft" ~client:5 ~replica:7 ~msg:"bytes" ~auth)

let test_addresses () =
  checkb "replica not client" false (Addr.is_client (Addr.replica 3));
  checkb "client flagged" true (Addr.is_client (Addr.client 0));
  checki "client roundtrip" 17 (Addr.client_of_addr (Addr.client 17))

let test_quorum_arithmetic () =
  checki "f of 4" 1 (Ids.f_of_n 4);
  checki "f of 7" 2 (Ids.f_of_n 7);
  checki "quorum of 4" 3 (Ids.quorum ~n:4);
  checki "quorum of 7" 5 (Ids.quorum ~n:7);
  checki "hybrid f of 3" 1 (Ids.f_of_n_hybrid 3);
  checki "primary rotates" 1 (Ids.primary_of_view ~n:4 5);
  checki "crash quorum" 2 (Ids.crash_quorum ~n:3)

let suites =
  [ ( "types",
      [ QCheck_alcotest.to_alcotest prop_message_roundtrip;
        QCheck_alcotest.to_alcotest prop_decode_total;
        QCheck_alcotest.to_alcotest prop_viewchange_roundtrip;
        QCheck_alcotest.to_alcotest prop_newview_roundtrip;
        QCheck_alcotest.to_alcotest prop_signing_bytes_ignore_signature;
        Alcotest.test_case "peek tag" `Quick test_peek_tag;
        Alcotest.test_case "summarize signature" `Quick test_summarize_shares_signature;
        Alcotest.test_case "empty batch digest" `Quick test_empty_batch_digest;
        Alcotest.test_case "prepare cert" `Quick test_prepare_cert;
        Alcotest.test_case "prepared proof" `Quick test_verify_prepared_proof;
        Alcotest.test_case "commit quorum" `Quick test_commit_quorum;
        Alcotest.test_case "checkpoint quorum" `Quick test_checkpoint_quorum;
        Alcotest.test_case "distinct senders" `Quick test_distinct_senders;
        Alcotest.test_case "newview gaps" `Quick test_newview_compute_gaps;
        Alcotest.test_case "newview highest view" `Quick test_newview_highest_view_wins;
        Alcotest.test_case "newview matches" `Quick test_newview_matches;
        Alcotest.test_case "dedup basic" `Quick test_dedup_basic;
        Alcotest.test_case "dedup out of order" `Quick test_dedup_out_of_order;
        Alcotest.test_case "dedup duplicates" `Quick test_dedup_rejects_duplicates;
        QCheck_alcotest.to_alcotest prop_dedup_executes_once;
        Alcotest.test_case "dedup reply cache" `Quick test_dedup_reply_cache;
        Alcotest.test_case "session op" `Quick test_session_op_roundtrip;
        Alcotest.test_case "session request auth" `Quick test_session_request_auth;
        Alcotest.test_case "session result" `Quick test_session_result_roundtrip;
        Alcotest.test_case "session provisions" `Quick test_session_provision_forms;
        Alcotest.test_case "authenticator" `Quick test_authenticator;
        Alcotest.test_case "addresses" `Quick test_addresses;
        Alcotest.test_case "quorum arithmetic" `Quick test_quorum_arithmetic ] ) ]
