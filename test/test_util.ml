module Hex = Splitbft_util.Hex
module Rng = Splitbft_util.Rng
module Heap = Splitbft_util.Heap
module Stats = Splitbft_util.Stats
module Lines = Splitbft_util.Lines

let check = Alcotest.(check string)
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* ----- hex ----- *)

let test_hex_encode () =
  check "empty" "" (Hex.encode "");
  check "abc" "616263" (Hex.encode "abc");
  check "binary" "00ff10" (Hex.encode "\x00\xff\x10")

let test_hex_decode () =
  check "roundtrip" "\x00\xff\x10" (Hex.decode_exn "00ff10");
  check "uppercase" "\xab\xcd" (Hex.decode_exn "ABCD");
  checkb "odd length rejected" true (Result.is_error (Hex.decode "abc"));
  checkb "bad char rejected" true (Result.is_error (Hex.decode "zz"))

let test_hex_short () =
  check "short truncates" "01020304" (Hex.short "\x01\x02\x03\x04\x05\x06");
  check "short of short input" "0102" (Hex.short "\x01\x02")

let hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s -> Hex.decode_exn (Hex.encode s) = s)

(* ----- rng ----- *)

let test_rng_deterministic () =
  let a = Rng.create 99L and b = Rng.create 99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let test_rng_bounds () =
  let rng = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    checkb "in range" true (v >= 0 && v < 17);
    let f = Rng.float rng 3.5 in
    checkb "float in range" true (f >= 0.0 && f < 3.5)
  done

let test_rng_split_independent () =
  let a = Rng.create 1L in
  let b = Rng.split a in
  checkb "split differs from parent stream" true (Rng.next64 a <> Rng.next64 b)

let test_rng_exponential_positive () =
  let rng = Rng.create 5L in
  for _ = 1 to 200 do
    checkb "positive" true (Rng.exponential rng ~mean:10.0 >= 0.0)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 3L in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 (fun i -> i)) sorted

(* ----- heap ----- *)

let test_heap_orders () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  let rec drain acc =
    match Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc
  in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (drain [])

let test_heap_peek () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check (option int)) "empty peek" None (Heap.peek h);
  Heap.push h 4;
  Heap.push h 2;
  Alcotest.(check (option int)) "peek min" (Some 2) (Heap.peek h);
  checki "peek does not remove" 2 (Heap.length h)

let test_heap_pop_exn_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.check_raises "empty pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let heap_sorts =
  QCheck.Test.make ~name:"heap drains sorted" ~count:100
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with Some x -> drain (x :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare xs)

(* ----- stats ----- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  checki "count" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max s)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  Alcotest.(check (float 2.0)) "p50" 50.0 (Stats.median s);
  Alcotest.(check (float 2.0)) "p99" 99.0 (Stats.percentile s 99.0)

let test_stats_percentile_interpolates () =
  (* Known arrays pin the interpolating definition: rank p/100*(n-1),
     linear between adjacent order statistics. *)
  let of_list l =
    let s = Stats.create () in
    List.iter (Stats.add s) l;
    s
  in
  let quad = of_list [ 10.0; 20.0; 30.0; 40.0 ] in
  Alcotest.(check (float 1e-9)) "p50 of 4" 25.0 (Stats.percentile quad 50.0);
  Alcotest.(check (float 1e-9)) "p90 of 4" 37.0 (Stats.percentile quad 90.0);
  Alcotest.(check (float 1e-9)) "p99 of 4" 39.7 (Stats.percentile quad 99.0);
  (* Before the fix, nearest-rank rounding collapsed p99 of a small sample
     onto the max and biased p50 upward ([1;2;3;4] -> p50 = 3). *)
  let four = of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check (float 1e-9)) "p50 unbiased" 2.5 (Stats.percentile four 50.0);
  Alcotest.(check bool) "p99 below max" true (Stats.percentile four 99.0 < 4.0);
  let cent = of_list (List.init 100 (fun i -> float_of_int (i + 1))) in
  Alcotest.(check (float 1e-9)) "p50 of 1..100" 50.5 (Stats.percentile cent 50.0);
  Alcotest.(check (float 1e-9)) "p90 of 1..100" 90.1 (Stats.percentile cent 90.0);
  Alcotest.(check (float 1e-9)) "p99 of 1..100" 99.01 (Stats.percentile cent 99.0);
  Alcotest.(check (float 1e-9)) "p0 is min" 1.0 (Stats.percentile cent 0.0);
  Alcotest.(check (float 1e-9)) "p100 is max" 100.0 (Stats.percentile cent 100.0);
  Alcotest.(check (float 1e-9)) "clamped above" 100.0 (Stats.percentile cent 150.0);
  let one = of_list [ 7.0 ] in
  Alcotest.(check (float 1e-9)) "singleton" 7.0 (Stats.percentile one 99.0)

let test_stats_empty_is_nan () =
  let s = Stats.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.mean s));
  Alcotest.(check bool) "p50 nan" true (Float.is_nan (Stats.median s))

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  Stats.add a 1.0;
  Stats.add b 3.0;
  let m = Stats.merge a b in
  checki "merged count" 2 (Stats.count m);
  Alcotest.(check (float 1e-9)) "merged mean" 2.0 (Stats.mean m)

(* ----- lines ----- *)

let test_lines_classification () =
  let src = "let x = 1\n\n(* a comment *)\nlet y = 2 (* trailing *)\n" in
  let c = Lines.count_string src in
  checki "code" 2 c.Lines.code;
  checki "comments" 1 c.Lines.comments;
  checki "blank" 1 c.Lines.blank

let test_lines_multiline_comment () =
  let src = "(* spans\nseveral\nlines *)\nlet z = 3\n" in
  let c = Lines.count_string src in
  checki "comments" 3 c.Lines.comments;
  checki "code" 1 c.Lines.code

let test_lines_nested_comment () =
  let src = "(* outer (* inner *) still comment *)\nlet a = 1\n" in
  let c = Lines.count_string src in
  checki "nested counts as comment" 1 c.Lines.comments;
  checki "code after" 1 c.Lines.code

let suites =
  [ ( "util",
      [ Alcotest.test_case "hex encode" `Quick test_hex_encode;
        Alcotest.test_case "hex decode" `Quick test_hex_decode;
        Alcotest.test_case "hex short" `Quick test_hex_short;
        QCheck_alcotest.to_alcotest hex_roundtrip;
        Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
        Alcotest.test_case "rng split" `Quick test_rng_split_independent;
        Alcotest.test_case "rng exponential" `Quick test_rng_exponential_positive;
        Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutation;
        Alcotest.test_case "heap ordering" `Quick test_heap_orders;
        Alcotest.test_case "heap peek" `Quick test_heap_peek;
        Alcotest.test_case "heap pop empty" `Quick test_heap_pop_exn_empty;
        QCheck_alcotest.to_alcotest heap_sorts;
        Alcotest.test_case "stats basic" `Quick test_stats_basic;
        Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
        Alcotest.test_case "stats percentile interpolates" `Quick
          test_stats_percentile_interpolates;
        Alcotest.test_case "stats empty" `Quick test_stats_empty_is_nan;
        Alcotest.test_case "stats merge" `Quick test_stats_merge;
        Alcotest.test_case "lines classify" `Quick test_lines_classification;
        Alcotest.test_case "lines multiline" `Quick test_lines_multiline_comment;
        Alcotest.test_case "lines nested" `Quick test_lines_nested_comment ] ) ]
